package storage

import (
	"bytes"
	"strings"
	"testing"

	"github.com/roulette-db/roulette/internal/catalog"
)

func TestDictBasics(t *testing.T) {
	d := NewDict()
	a := d.Code("apple")
	b := d.Code("banana")
	if a == b {
		t.Fatal("distinct values share a code")
	}
	if got := d.Code("apple"); got != a {
		t.Error("Code not stable")
	}
	if v := d.Value(b); v != "banana" {
		t.Errorf("Value = %q", v)
	}
	if d.Value(99) != "" {
		t.Error("out-of-range Value should be empty")
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Error("Lookup interned")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDictSortedRemap(t *testing.T) {
	d := NewDict()
	zebra := d.Code("zebra")
	apple := d.Code("apple")
	mango := d.Code("mango")
	remap := d.SortedRemap()
	// After remap: apple=0, mango=1, zebra=2.
	if remap[zebra] != 2 || remap[apple] != 0 || remap[mango] != 1 {
		t.Errorf("remap = %v", remap)
	}
	if c, _ := d.Lookup("apple"); c != 0 {
		t.Errorf("apple code after remap = %d", c)
	}
	vals := d.Values()
	if vals[0] != "apple" || vals[2] != "zebra" {
		t.Errorf("values = %v", vals)
	}
}

func TestLoadCSV(t *testing.T) {
	rel := catalog.NewRelation("people", "id", "name", "age")
	dict := NewDict()
	src := "id,name,age\n1,alice,30\n2,bob,25\n3,alice,41\n"
	tab, err := LoadCSV(rel, strings.NewReader(src), CSVOptions{
		Header: true,
		Dicts:  map[string]*Dict{"name": dict},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	name := tab.Col("name")
	if name[0] != name[2] || name[0] == name[1] {
		t.Errorf("dictionary encoding broken: %v", name)
	}
	if dict.Value(name[1]) != "bob" {
		t.Errorf("decode = %q", dict.Value(name[1]))
	}
	if tab.Col("age")[2] != 41 {
		t.Errorf("age = %v", tab.Col("age"))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	rel := catalog.NewRelation("t", "a", "b")
	if _, err := LoadCSV(rel, strings.NewReader("1,2,3\n"), CSVOptions{}); err == nil {
		t.Error("wrong field count accepted")
	}
	if _, err := LoadCSV(rel, strings.NewReader("1,notanint\n"), CSVOptions{}); err == nil {
		t.Error("non-integer without dict accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rel := catalog.NewRelation("t", "x", "y")
	orig := MustFromColumns(rel, []int64{1, -5, 9}, []int64{7, 0, 42})
	var buf bytes.Buffer
	if err := SaveBinary(orig, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(rel, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	for c := 0; c < 2; c++ {
		for r := 0; r < 3; r++ {
			if got.ColAt(c)[r] != orig.ColAt(c)[r] {
				t.Errorf("col %d row %d: %d != %d", c, r, got.ColAt(c)[r], orig.ColAt(c)[r])
			}
		}
	}
}

func TestLoadBinaryRejectsGarbage(t *testing.T) {
	rel := catalog.NewRelation("t", "x")
	if _, err := LoadBinary(rel, bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short input accepted")
	}
	var buf bytes.Buffer
	two := catalog.NewRelation("two", "a", "b")
	if err := SaveBinary(MustFromColumns(two, []int64{1}, []int64{2}), &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinary(rel, &buf); err == nil {
		t.Error("column-count mismatch accepted")
	}
}
