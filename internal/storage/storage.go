// Package storage implements RouLette's in-memory columnar storage manager.
//
// Tables store typed columns whose physical representation is always
// []int64: plain integers, dictionary codes for string columns (the
// catalog's per-column Dict maps codes back to strings), and value.NullCode
// for NULL cells of nullable columns. Tuples are addressed by virtual IDs
// (vIDs), and operators reconstruct attribute mini-columns on demand (late
// materialization over a PAX-style layout, §3 of the paper). The package
// also provides the circular-scan iterators that RouLette's ingestion uses.
package storage

import (
	"fmt"
	"math/bits"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/value"
)

// Table is an in-memory columnar table.
type Table struct {
	Rel  *catalog.Relation
	cols [][]int64
	// nulls holds one bitmap per column (bit r set = row r is NULL); nil
	// entries mean the column has no NULLs. Bitmaps are derived from
	// value.NullCode cells of nullable columns at construction and are the
	// authoritative record for result decoding.
	nulls [][]uint64
	rows  int
}

// NewTable allocates a table with the relation's schema and rows rows.
func NewTable(rel *catalog.Relation, rows int) *Table {
	t := &Table{Rel: rel, rows: rows}
	t.cols = make([][]int64, len(rel.Columns))
	for i := range t.cols {
		t.cols[i] = make([]int64, rows)
	}
	return t
}

// FromColumns builds a table from pre-built columns, which must all have the
// same length and match the relation's column count. Loaders reach this with
// externally supplied data, so shape mismatches are returned, not panicked.
func FromColumns(rel *catalog.Relation, cols ...[]int64) (*Table, error) {
	if len(cols) != len(rel.Columns) {
		return nil, fmt.Errorf("storage: %s expects %d columns, got %d", rel.Name, len(rel.Columns), len(cols))
	}
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	for i, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("storage: %s column %d has %d rows, want %d", rel.Name, i, len(c), rows)
		}
	}
	t := &Table{Rel: rel, cols: cols, rows: rows}
	for i := range rel.Columns {
		if rel.Columns[i].Nullable {
			t.buildNullBitmap(i)
		}
	}
	return t, nil
}

// buildNullBitmap scans column i for NullCode cells and records them.
func (t *Table) buildNullBitmap(i int) {
	var bm []uint64
	for r, v := range t.cols[i] {
		if v == value.NullCode {
			if bm == nil {
				bm = make([]uint64, (t.rows+63)/64)
			}
			bm[r>>6] |= 1 << (uint(r) & 63)
		}
	}
	if bm != nil {
		if t.nulls == nil {
			t.nulls = make([][]uint64, len(t.cols))
		}
		t.nulls[i] = bm
	}
}

// MustFromColumns is FromColumns, panicking on error (for statically shaped
// setup code and tests).
func MustFromColumns(rel *catalog.Relation, cols ...[]int64) *Table {
	t, err := FromColumns(rel, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the table's cardinality.
func (t *Table) NumRows() int { return t.rows }

// Col returns the named column; it panics if the column does not exist.
func (t *Table) Col(name string) []int64 {
	i := t.Rel.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: relation %s has no column %s", t.Rel.Name, name))
	}
	return t.cols[i]
}

// ColAt returns the column at schema position i.
func (t *Table) ColAt(i int) []int64 { return t.cols[i] }

// IsNull reports whether row r of the named column is NULL. It consults the
// null bitmap, so a plain int64 column that happens to store
// math.MinInt64 is not reported NULL.
func (t *Table) IsNull(name string, r int) bool {
	i := t.Rel.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: relation %s has no column %s", t.Rel.Name, name))
	}
	return t.IsNullAt(i, r)
}

// IsNullAt is IsNull by schema position.
func (t *Table) IsNullAt(i, r int) bool {
	if t.nulls == nil || t.nulls[i] == nil {
		return false
	}
	return t.nulls[i][r>>6]&(1<<(uint(r)&63)) != 0
}

// NullCount returns the number of NULL cells in column i.
func (t *Table) NullCount(i int) int {
	if t.nulls == nil || t.nulls[i] == nil {
		return 0
	}
	n := 0
	for _, w := range t.nulls[i] {
		n += bits.OnesCount64(w)
	}
	return n
}

// Database maps relation names to tables.
type Database struct {
	Schema *catalog.Schema
	tables map[string]*Table
}

// NewDatabase creates an empty database over schema.
func NewDatabase(schema *catalog.Schema) *Database {
	return &Database{Schema: schema, tables: make(map[string]*Table)}
}

// Put registers a table under its relation name, replacing any previous one.
func (d *Database) Put(t *Table) { d.tables[t.Rel.Name] = t }

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table { return d.tables[name] }

// MustTable returns the named table; it panics if absent.
func (d *Database) MustTable(name string) *Table {
	t := d.tables[name]
	if t == nil {
		panic(fmt.Sprintf("storage: no table %q", name))
	}
	return t
}

// TableNames returns the registered table names (unordered).
func (d *Database) TableNames() []string {
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	return out
}

// CircularScan iterates over a table's vIDs in fixed-size vectors, wrapping
// around the end (QPipe/Cooperative-Scans style, §3 "Ingestion"). A consumer
// that starts mid-scan still sees every tuple exactly once per revolution.
type CircularScan struct {
	rows int
	vec  int
	pos  int // next vID to hand out
}

// NewCircularScan creates a scan over rows tuples with vectors of vec
// tuples. Vector sizes arrive from session configuration, so a non-positive
// size is reported rather than panicked.
func NewCircularScan(rows, vec int) (*CircularScan, error) {
	if vec <= 0 {
		return nil, fmt.Errorf("storage: vector size must be positive, got %d", vec)
	}
	return &CircularScan{rows: rows, vec: vec}, nil
}

// Pos returns the current scan position (the vID the next vector starts at).
func (s *CircularScan) Pos() int { return s.pos }

// Rows returns the number of tuples in the underlying relation.
func (s *CircularScan) Rows() int { return s.rows }

// Next returns the next vector as a half-open vID range [start, start+n) and
// advances the scan, wrapping to 0 past the end. n can be smaller than the
// vector size only for the final chunk before wrapping; n is 0 only for an
// empty table.
func (s *CircularScan) Next() (start, n int) {
	if s.rows == 0 {
		return 0, 0
	}
	start = s.pos
	n = s.vec
	if start+n > s.rows {
		n = s.rows - start
	}
	s.pos = (start + n) % s.rows
	return start, n
}

// VectorsPerPass returns how many Next calls cover the whole relation once.
func (s *CircularScan) VectorsPerPass() int {
	if s.rows == 0 {
		return 0
	}
	return (s.rows + s.vec - 1) / s.vec
}
