package storage

import (
	"testing"

	"github.com/roulette-db/roulette/internal/catalog"
)

func TestTableBasics(t *testing.T) {
	rel := catalog.NewRelation("r", "a", "b")
	tab := NewTable(rel, 10)
	if tab.NumRows() != 10 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	a := tab.Col("a")
	for i := range a {
		a[i] = int64(i * 2)
	}
	if tab.Col("a")[3] != 6 {
		t.Error("column write not visible")
	}
	if tab.ColAt(0)[3] != 6 {
		t.Error("ColAt disagrees with Col")
	}

	defer func() {
		if recover() == nil {
			t.Error("Col of missing column should panic")
		}
	}()
	tab.Col("missing")
}

func TestFromColumnsValidation(t *testing.T) {
	rel := catalog.NewRelation("r", "a", "b")
	if _, err := FromColumns(rel, []int64{1, 2}, []int64{1}); err == nil {
		t.Error("mismatched column lengths should be an error")
	}
	if _, err := FromColumns(rel, []int64{1, 2}); err == nil {
		t.Error("column-count mismatch should be an error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustFromColumns should panic on error")
			}
		}()
		MustFromColumns(rel, []int64{1, 2}, []int64{1})
	}()
}

func TestDatabase(t *testing.T) {
	rel := catalog.NewRelation("r", "a")
	sch := catalog.NewSchema(rel)
	db := NewDatabase(sch)
	db.Put(NewTable(rel, 5))
	if db.Table("r") == nil {
		t.Fatal("table not found")
	}
	if db.Table("x") != nil {
		t.Fatal("phantom table")
	}
	if got := db.MustTable("r").NumRows(); got != 5 {
		t.Errorf("rows = %d", got)
	}
	if len(db.TableNames()) != 1 {
		t.Errorf("TableNames = %v", db.TableNames())
	}
}

func TestCircularScanCoversAllOncePerPass(t *testing.T) {
	for _, rows := range []int{1, 5, 10, 17, 100} {
		for _, vec := range []int{1, 4, 7, 16, 128} {
			s, err := NewCircularScan(rows, vec)
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]int, rows)
			for i := 0; i < s.VectorsPerPass(); i++ {
				start, n := s.Next()
				if n == 0 {
					t.Fatalf("rows=%d vec=%d: empty vector mid-pass", rows, vec)
				}
				for j := 0; j < n; j++ {
					seen[start+j]++
				}
			}
			for v, c := range seen {
				if c != 1 {
					t.Fatalf("rows=%d vec=%d: vID %d seen %d times", rows, vec, v, c)
				}
			}
			if s.Pos() != 0 {
				t.Fatalf("rows=%d vec=%d: pos after full pass = %d", rows, vec, s.Pos())
			}
		}
	}
}

func TestCircularScanWrap(t *testing.T) {
	s, err := NewCircularScan(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Vectors: [0,4) [4,8) [8,10) then wrap to [0,4).
	wants := [][2]int{{0, 4}, {4, 4}, {8, 2}, {0, 4}}
	for i, w := range wants {
		start, n := s.Next()
		if start != w[0] || n != w[1] {
			t.Fatalf("Next #%d = (%d,%d), want (%d,%d)", i, start, n, w[0], w[1])
		}
	}
}

func TestCircularScanEmpty(t *testing.T) {
	s, err := NewCircularScan(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCircularScan(5, 0); err == nil {
		t.Error("non-positive vector size should be an error")
	}
	if _, n := s.Next(); n != 0 {
		t.Error("empty table should yield empty vectors")
	}
	if s.VectorsPerPass() != 0 {
		t.Error("VectorsPerPass on empty table")
	}
}

func TestCatalogSchema(t *testing.T) {
	r := catalog.NewRelation("fact", "k", "d1_k")
	d := catalog.NewRelation("d1", "k", "v")
	sch := catalog.NewSchema(r, d)
	sch.AddFK("fact", "d1_k", "d1", "k")
	if len(sch.EdgesOf("fact")) != 1 || len(sch.EdgesOf("d1")) != 1 {
		t.Error("EdgesOf wrong")
	}
	if sch.Relation("fact").ColIndex("d1_k") != 1 {
		t.Error("ColIndex wrong")
	}
	if sch.Relation("nope") != nil {
		t.Error("phantom relation")
	}
}
