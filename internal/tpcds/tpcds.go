// Package tpcds provides the TPC-DS-shaped substrate of the evaluation: a
// three-channel snowstorm schema (store / catalog / web sales facts with
// shared and channel-specific dimensions, plus customer sub-dimensions), a
// synthetic data generator at configurable scale, and the paper's extension
// of every table with a uniformly distributed 0..999 column ("u") used to
// control query selectivity precisely (§6.1).
//
// Substitution note (see DESIGN.md): the paper loads dsdgen SF10 data; this
// generator reproduces the schema topology, key domains and uniform
// selectivity-control column that the generated workloads actually exercise,
// at laptop scale.
package tpcds

import (
	"math/rand"
	"sort"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/storage"
)

// SchemaKind selects the join-graph subset workloads draw from (Fig. 11d).
type SchemaKind int

// Schema kinds of the sensitivity analysis.
const (
	// Template: the fixed join set store_sales ⋈ date_dim ⋈ hdemo ⋈ item ⋈
	// customer.
	Template SchemaKind = iota
	// SnowflakeStore: subgraphs of the store channel's star (fact → direct
	// dimensions only).
	SnowflakeStore
	// SnowflakeAll: subgraphs of any single channel's star.
	SnowflakeAll
	// SnowstormStore: the store star plus customer sub-dimensions.
	SnowstormStore
	// SnowstormAll: any channel's star plus sub-dimensions.
	SnowstormAll
)

// String names the schema kind as in Fig. 11d.
func (k SchemaKind) String() string {
	switch k {
	case Template:
		return "template"
	case SnowflakeStore:
		return "snowflake-store"
	case SnowflakeAll:
		return "snowflake-all"
	case SnowstormStore:
		return "snowstorm-store"
	case SnowstormAll:
		return "snowstorm-all"
	}
	return "unknown"
}

// Edge is one usable join edge of a schema graph: child.childCol =
// parent.parentCol.
type Edge struct {
	Child, ChildCol, Parent, ParentCol string
}

// Sizes at scale 1.0. Dimension sizes follow TPC-DS proportions
// (dimensions largely scale-invariant, facts linear in scale).
var baseSizes = map[string]int{
	"store_sales":            20000,
	"catalog_sales":          12000,
	"web_sales":              6000,
	"date_dim":               1095,
	"time_dim":               864,
	"item":                   1800,
	"customer":               4000,
	"customer_address":       2000,
	"customer_demographics":  1920,
	"household_demographics": 720,
	"promotion":              90,
	"store":                  24,
	"warehouse":              10,
	"ship_mode":              20,
	"web_site":               12,
	"web_page":               60,
}

// factTables lists the channel facts; only facts scale with the factor.
var factTables = map[string]bool{"store_sales": true, "catalog_sales": true, "web_sales": true}

// channelEdges maps each channel fact to its star edges.
var channelEdges = map[string][]Edge{
	"store_sales": {
		{"store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"},
		{"store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk"},
		{"store_sales", "ss_item_sk", "item", "i_item_sk"},
		{"store_sales", "ss_customer_sk", "customer", "c_customer_sk"},
		{"store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk"},
		{"store_sales", "ss_store_sk", "store", "s_store_sk"},
		{"store_sales", "ss_promo_sk", "promotion", "p_promo_sk"},
	},
	"catalog_sales": {
		{"catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"},
		{"catalog_sales", "cs_sold_time_sk", "time_dim", "t_time_sk"},
		{"catalog_sales", "cs_item_sk", "item", "i_item_sk"},
		{"catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"},
		{"catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk"},
		{"catalog_sales", "cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"},
		{"catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk"},
	},
	"web_sales": {
		{"web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk"},
		{"web_sales", "ws_sold_time_sk", "time_dim", "t_time_sk"},
		{"web_sales", "ws_item_sk", "item", "i_item_sk"},
		{"web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk"},
		{"web_sales", "ws_web_site_sk", "web_site", "web_site_sk"},
		{"web_sales", "ws_web_page_sk", "web_page", "wp_web_page_sk"},
		{"web_sales", "ws_promo_sk", "promotion", "p_promo_sk"},
	},
}

// snowstormEdges extends dimension tables with sub-dimensions.
var snowstormEdges = []Edge{
	{"customer", "c_current_addr_sk", "customer_address", "ca_address_sk"},
	{"customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"},
}

// Facts returns the channel fact tables usable under kind.
func Facts(kind SchemaKind) []string {
	switch kind {
	case Template, SnowflakeStore, SnowstormStore:
		return []string{"store_sales"}
	default:
		return []string{"store_sales", "catalog_sales", "web_sales"}
	}
}

// Edges returns the usable join edges when the query's fact is fact. Facts
// of different channels are never joined (the paper excludes the one TPC-DS
// query that does).
func Edges(kind SchemaKind, fact string) []Edge {
	star := channelEdges[fact]
	switch kind {
	case Template, SnowflakeStore, SnowflakeAll:
		return star
	default:
		out := append([]Edge(nil), star...)
		out = append(out, snowstormEdges...)
		return out
	}
}

// TemplateEdges returns the fixed template join set of Fig. 11d.
func TemplateEdges() []Edge {
	return []Edge{
		{"store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"},
		{"store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk"},
		{"store_sales", "ss_item_sk", "item", "i_item_sk"},
		{"store_sales", "ss_customer_sk", "customer", "c_customer_sk"},
	}
}

// keyColumns maps each table to its primary key column.
var keyColumns = map[string]string{
	"date_dim":               "d_date_sk",
	"time_dim":               "t_time_sk",
	"item":                   "i_item_sk",
	"customer":               "c_customer_sk",
	"customer_address":       "ca_address_sk",
	"customer_demographics":  "cd_demo_sk",
	"household_demographics": "hd_demo_sk",
	"promotion":              "p_promo_sk",
	"store":                  "s_store_sk",
	"warehouse":              "w_warehouse_sk",
	"ship_mode":              "sm_ship_mode_sk",
	"web_site":               "web_site_sk",
	"web_page":               "wp_web_page_sk",
}

// Generate builds the database at the given scale factor (facts scale
// linearly, dimensions are fixed) with deterministic content from seed.
// Every table carries the uniform selectivity-control column "u" (0..999).
func Generate(scale float64, seed int64) *storage.Database {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))

	sizes := make(map[string]int, len(baseSizes))
	for t, n := range baseSizes {
		if factTables[t] {
			n = int(float64(n) * scale)
			if n < 100 {
				n = 100
			}
		}
		sizes[t] = n
	}

	// Collect column lists per table.
	cols := map[string][]string{}
	addCol := func(t, c string) {
		for _, have := range cols[t] {
			if have == c {
				return
			}
		}
		cols[t] = append(cols[t], c)
	}
	for t, k := range keyColumns {
		addCol(t, k)
	}
	for _, edges := range channelEdges {
		for _, e := range edges {
			addCol(e.Child, e.ChildCol)
			addCol(e.Parent, e.ParentCol)
		}
	}
	for _, e := range snowstormEdges {
		addCol(e.Child, e.ChildCol)
		addCol(e.Parent, e.ParentCol)
	}
	for t := range sizes {
		addCol(t, "u")
	}
	// A couple of measure columns on facts.
	addCol("store_sales", "ss_quantity")
	addCol("catalog_sales", "cs_quantity")
	addCol("web_sales", "ws_quantity")

	// Deterministic generation requires a fixed table order (maps iterate
	// randomly, which would perturb the RNG stream).
	names := make([]string, 0, len(sizes))
	for t := range sizes {
		names = append(names, t)
	}
	sort.Strings(names)

	var rels []*catalog.Relation
	for _, t := range names {
		rels = append(rels, catalog.NewRelation(t, cols[t]...))
	}
	sch := catalog.NewSchema(rels...)
	for _, fact := range []string{"store_sales", "catalog_sales", "web_sales"} {
		for _, e := range channelEdges[fact] {
			sch.MustAddFK(e.Child, e.ChildCol, e.Parent, e.ParentCol)
		}
	}
	for _, e := range snowstormEdges {
		sch.MustAddFK(e.Child, e.ChildCol, e.Parent, e.ParentCol)
	}

	db := storage.NewDatabase(sch)
	for _, t := range names {
		n := sizes[t]
		tab := storage.NewTable(sch.Relation(t), n)
		// Primary keys: dense 0..n-1.
		if k, ok := keyColumns[t]; ok {
			col := tab.Col(k)
			for i := range col {
				col[i] = int64(i)
			}
		}
		// Uniform selectivity column.
		u := tab.Col("u")
		for i := range u {
			u[i] = int64(rng.Intn(1000))
		}
		db.Put(tab)
	}
	// Foreign keys: uniform over the parent domain.
	fill := func(e Edge) {
		child := db.MustTable(e.Child)
		parentRows := db.MustTable(e.Parent).NumRows()
		col := child.Col(e.ChildCol)
		for i := range col {
			col[i] = int64(rng.Intn(parentRows))
		}
	}
	for _, fact := range []string{"store_sales", "catalog_sales", "web_sales"} {
		for _, e := range channelEdges[fact] {
			fill(e)
		}
	}
	for _, e := range snowstormEdges {
		fill(e)
	}
	// Measures.
	for _, f := range []struct{ t, c string }{
		{"store_sales", "ss_quantity"}, {"catalog_sales", "cs_quantity"}, {"web_sales", "ws_quantity"},
	} {
		col := db.MustTable(f.t).Col(f.c)
		for i := range col {
			col[i] = int64(1 + rng.Intn(100))
		}
	}
	return db
}
