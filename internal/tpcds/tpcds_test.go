package tpcds

import (
	"testing"
)

func TestGenerateShapes(t *testing.T) {
	db := Generate(0.5, 1)
	ss := db.MustTable("store_sales")
	if ss.NumRows() != 10000 {
		t.Errorf("store_sales rows = %d, want 10000 at scale 0.5", ss.NumRows())
	}
	dd := db.MustTable("date_dim")
	if dd.NumRows() != 1095 {
		t.Errorf("date_dim rows = %d (dimensions must not scale)", dd.NumRows())
	}
	// FK domain: every ss_sold_date_sk must be a valid date_dim key.
	fk := ss.Col("ss_sold_date_sk")
	for _, v := range fk {
		if v < 0 || v >= int64(dd.NumRows()) {
			t.Fatalf("FK out of domain: %d", v)
		}
	}
	// Uniform column present everywhere and in range.
	for _, name := range db.TableNames() {
		u := db.MustTable(name).Col("u")
		for _, v := range u {
			if v < 0 || v > 999 {
				t.Fatalf("%s.u out of range: %d", name, v)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.1, 7)
	b := Generate(0.1, 7)
	ca := a.MustTable("store_sales").Col("ss_item_sk")
	cb := b.MustTable("store_sales").Col("ss_item_sk")
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("generation not deterministic for equal seeds")
		}
	}
}

func TestEdgesPerKind(t *testing.T) {
	if got := len(Facts(SnowflakeStore)); got != 1 {
		t.Errorf("snowflake-store facts = %d", got)
	}
	if got := len(Facts(SnowstormAll)); got != 3 {
		t.Errorf("snowstorm-all facts = %d", got)
	}
	star := Edges(SnowflakeStore, "store_sales")
	storm := Edges(SnowstormStore, "store_sales")
	if len(storm) != len(star)+2 {
		t.Errorf("snowstorm edges = %d, want star+2 (customer sub-dims)", len(storm))
	}
	for _, e := range Edges(SnowflakeAll, "web_sales") {
		if e.Child == "store_sales" || e.Parent == "store_sales" {
			t.Error("web channel edges must not touch store_sales")
		}
	}
	if len(TemplateEdges()) != 4 {
		t.Errorf("template edges = %d, want 4", len(TemplateEdges()))
	}
}

func TestUniformColumnIsRoughlyUniform(t *testing.T) {
	db := Generate(1, 3)
	u := db.MustTable("store_sales").Col("u")
	var buckets [10]int
	for _, v := range u {
		buckets[v/100]++
	}
	expect := len(u) / 10
	for i, c := range buckets {
		if c < expect*7/10 || c > expect*13/10 {
			t.Errorf("bucket %d count %d far from uniform expectation %d", i, c, expect)
		}
	}
}
