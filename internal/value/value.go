// Package value defines the typed-column vocabulary shared by the catalog,
// storage, and execution layers: column types, the in-band NULL sentinel,
// and dictionary encoding for string attributes.
//
// Physical columns stay []int64 everywhere — string columns hold dense
// dictionary codes and NULLs hold NullCode — so the vectorized STeM kernels
// and the zero-alloc episode step never see anything but int64. Types,
// nullability, and dictionaries live in the catalog as metadata that the
// front end (predicate typing, result decoding) consults.
package value

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ColType is the logical type of a column.
type ColType uint8

const (
	// Int64 is the default attribute type: plain 64-bit integers.
	Int64 ColType = iota
	// String is a dictionary-encoded string column: the physical column
	// holds dense int64 codes into the column's Dict.
	String
)

// String names the type for error messages and catalogs.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case String:
		return "string"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// NullCode is the in-band NULL sentinel stored in physical columns of
// nullable attributes. It is chosen outside every dictionary's code space
// (codes are dense and non-negative) and rejected at load time for nullable
// int64 columns, so a NullCode cell always means SQL NULL. Filters and STeM
// probes treat it as never-matching; null bitmaps on storage.Table stay the
// authoritative record for decoding.
const NullCode int64 = math.MinInt64

// ErrTypeMismatch is wrapped by every error where a predicate's literal type
// disagrees with the column's declared type (string literal on an int64
// column, integer comparison on a string column, string join across
// relations without a shared dictionary). Match with errors.Is.
var ErrTypeMismatch = errors.New("type mismatch")

// Dict is a string dictionary: a bijection between strings and dense int64
// codes starting at 0. Code (which may grow the dictionary) takes the write
// lock; Lookup/Value/Len/Values are safe for any number of concurrent
// readers, including while a single loader goroutine is appending. This is
// exactly the engine's access pattern: dictionaries are mutated only at
// load/unification time, then read concurrently by filters and result
// decoding.
type Dict struct {
	mu     sync.RWMutex
	codes  map[string]int64
	values []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int64)}
}

// Code returns the code for s, assigning the next dense code if s is new.
func (d *Dict) Code(s string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := int64(len(d.values))
	d.codes[s] = c
	d.values = append(d.values, s)
	return c
}

// Lookup returns the code for s without assigning one. ok is false when s
// has never been seen.
func (d *Dict) Lookup(s string) (code int64, ok bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.codes[s]
	return c, ok
}

// Value decodes a code back to its string; it returns "" for out-of-range
// codes (including NullCode).
func (d *Dict) Value(code int64) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if code < 0 || code >= int64(len(d.values)) {
		return ""
	}
	return d.values[code]
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.values)
}

// Values returns a copy of the code->string table.
func (d *Dict) Values() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.values))
	copy(out, d.values)
	return out
}

// Merge folds other's strings into d and returns a remap table translating
// other's codes into d's: remap[oldCode] = newCode. It is the loader-time
// dictionary-unification primitive: after remapping the columns that used
// other, both relations share d and string joins become int64 code joins.
func (d *Dict) Merge(other *Dict) []int64 {
	if other == d {
		remap := make([]int64, d.Len())
		for i := range remap {
			remap[i] = int64(i)
		}
		return remap
	}
	vals := other.Values()
	remap := make([]int64, len(vals))
	for i, s := range vals {
		remap[i] = d.Code(s)
	}
	return remap
}

// SortedRemap re-assigns codes in lexicographic string order and returns the
// old-code -> new-code table, so callers can rewrite already-encoded
// columns. After it returns, code order equals string order, making range
// predicates over the dictionary meaningful.
func (d *Dict) SortedRemap() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.values
	sorted := make([]string, len(old))
	copy(sorted, old)
	insertionSort(sorted)
	remap := make([]int64, len(old))
	newCodes := make(map[string]int64, len(sorted))
	for i, s := range sorted {
		newCodes[s] = int64(i)
	}
	for oldCode, s := range old {
		remap[oldCode] = newCodes[s]
	}
	d.values = sorted
	d.codes = newCodes
	return remap
}

// insertionSort avoids importing sort for a cold path and keeps the package
// dependency-free. Dictionaries are re-sorted once at load time.
func insertionSort(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
