package workload

import (
	"fmt"
	"sort"

	"github.com/roulette-db/roulette/internal/query"
)

// The paper's sensitivity analysis shows sharing degrades with join-set
// diversity and suggests "increasing homogeneity using workload-aware
// batching" as future work (§6.1). This file implements that optimization:
// queries are clustered into batches by join-set similarity, so each batch
// maximizes shareable work.

// joinSet returns a canonical signature set of a query's join edges.
func joinSet(q *query.Query) map[string]struct{} {
	aliasTable := map[string]string{}
	for _, r := range q.Rels {
		a := r.Alias
		if a == "" {
			a = r.Table
		}
		aliasTable[a] = r.Table
	}
	s := make(map[string]struct{}, len(q.Joins))
	for _, j := range q.Joins {
		l := fmt.Sprintf("%s.%s", aliasTable[j.LeftAlias], j.LeftCol)
		r := fmt.Sprintf("%s.%s", aliasTable[j.RightAlias], j.RightCol)
		if l > r {
			l, r = r, l
		}
		s[l+"="+r] = struct{}{}
	}
	return s
}

// jaccard computes |a∩b| / |a∪b|; two empty sets are fully similar.
func jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// ClusterBatches groups queries into batches of at most batchSize,
// maximizing intra-batch join-set similarity: a greedy agglomeration that
// repeatedly seeds a batch with the first unassigned query and fills it
// with the most similar remaining queries.
func ClusterBatches(qs []*query.Query, batchSize int) [][]*query.Query {
	if batchSize <= 0 {
		batchSize = len(qs)
	}
	sets := make([]map[string]struct{}, len(qs))
	for i, q := range qs {
		sets[i] = joinSet(q)
	}
	assigned := make([]bool, len(qs))
	var out [][]*query.Query
	for seed := 0; seed < len(qs); seed++ {
		if assigned[seed] {
			continue
		}
		assigned[seed] = true
		batch := []*query.Query{qs[seed]}
		// Rank remaining queries by similarity to the seed.
		type cand struct {
			idx int
			sim float64
		}
		var cands []cand
		for j := seed + 1; j < len(qs); j++ {
			if !assigned[j] {
				cands = append(cands, cand{j, jaccard(sets[seed], sets[j])})
			}
		}
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].sim > cands[b].sim })
		for _, c := range cands {
			if len(batch) >= batchSize {
				break
			}
			assigned[c.idx] = true
			batch = append(batch, qs[c.idx])
		}
		out = append(out, batch)
	}
	return out
}

// FIFOBatches splits queries into batches of at most batchSize in arrival
// order (the paper's workload-agnostic scheduling baseline).
func FIFOBatches(qs []*query.Query, batchSize int) [][]*query.Query {
	if batchSize <= 0 {
		batchSize = len(qs)
	}
	var out [][]*query.Query
	for i := 0; i < len(qs); i += batchSize {
		end := i + batchSize
		if end > len(qs) {
			end = len(qs)
		}
		out = append(out, qs[i:end:end])
	}
	return out
}

// MeanPairwiseSimilarity reports the average intra-batch join-set Jaccard
// similarity over a batching — the homogeneity metric clustering optimizes.
func MeanPairwiseSimilarity(batches [][]*query.Query) float64 {
	total, pairs := 0.0, 0
	for _, b := range batches {
		sets := make([]map[string]struct{}, len(b))
		for i, q := range b {
			sets[i] = joinSet(q)
		}
		for i := 0; i < len(b); i++ {
			for j := i + 1; j < len(b); j++ {
				total += jaccard(sets[i], sets[j])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 1
	}
	return total / float64(pairs)
}
