package workload

import (
	"testing"

	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/tpcds"
)

func TestFIFOBatches(t *testing.T) {
	qs := NewGenerator(DefaultParams()).Generate(10)
	bs := FIFOBatches(qs, 4)
	if len(bs) != 3 || len(bs[0]) != 4 || len(bs[2]) != 2 {
		t.Fatalf("batch sizes = %v", lens(bs))
	}
	if bs[0][0] != qs[0] || bs[2][1] != qs[9] {
		t.Error("FIFO order broken")
	}
	if got := FIFOBatches(qs, 0); len(got) != 1 || len(got[0]) != 10 {
		t.Error("batchSize<=0 should produce one batch")
	}
}

func TestClusterBatchesCoversAllOnce(t *testing.T) {
	p := DefaultParams()
	p.Kind = tpcds.SnowstormAll
	p.Seed = 5
	qs := NewGenerator(p).Generate(60)
	bs := ClusterBatches(qs, 8)
	seen := map[*query.Query]bool{}
	for _, b := range bs {
		if len(b) > 8 {
			t.Fatalf("batch over size: %d", len(b))
		}
		for _, q := range b {
			if seen[q] {
				t.Fatal("query assigned twice")
			}
			seen[q] = true
		}
	}
	if len(seen) != 60 {
		t.Fatalf("covered %d queries", len(seen))
	}
}

func TestClusteringImprovesHomogeneity(t *testing.T) {
	// On a diverse (snowstorm-all) workload, clustered batches must have
	// markedly higher intra-batch join-set similarity than FIFO.
	p := DefaultParams()
	p.Kind = tpcds.SnowstormAll
	p.Seed = 7
	qs := NewGenerator(p).Generate(128)
	fifo := MeanPairwiseSimilarity(FIFOBatches(qs, 16))
	clustered := MeanPairwiseSimilarity(ClusterBatches(qs, 16))
	if clustered <= fifo {
		t.Errorf("clustered similarity %.3f not above FIFO %.3f", clustered, fifo)
	}
	t.Logf("similarity: fifo=%.3f clustered=%.3f", fifo, clustered)
}

func TestJaccard(t *testing.T) {
	a := map[string]struct{}{"x": {}, "y": {}}
	b := map[string]struct{}{"y": {}, "z": {}}
	if got := jaccard(a, b); got != 1.0/3.0 {
		t.Errorf("jaccard = %v", got)
	}
	if jaccard(nil, nil) != 1 {
		t.Error("empty sets should be fully similar")
	}
}

func lens(bs [][]*query.Query) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = len(b)
	}
	return out
}
