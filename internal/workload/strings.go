// String-heavy workload: a TPC-H-shaped substrate with dictionary-encoded,
// skewed string columns plus nullable attributes, and a query generator
// whose predicates and one join run over strings. This is the typed-column
// counterpart of the TPC-DS generator: JOB/IMDB-style workloads (ReJOIN,
// JoinGym) are string-heavy, so the evaluation needs a figure where the
// engine's dictionary path — typed grouped filters, shared-dictionary
// joins, NULL semantics — carries the load rather than int64 keys.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// Fixed vocabularies, TPC-H flavored. The generator references them by
// value, so queries can be drawn without the database at hand.
var (
	// Nations is shared by supplier.s_nation and customer.c_nation through
	// ONE dictionary, which is what makes the cross-relation string join
	// s_nation = c_nation executable (join keys compare as codes).
	Nations = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	ShipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	Segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	// ReturnFlags is the nullable column's vocabulary: lineitem rows that
	// have not been returned carry NULL, not a flag.
	ReturnFlags = []string{"R", "A", "N"}
)

// Brands lists the 25 "Brand#xy" part brands.
var Brands = func() []string {
	out := make([]string, 0, 25)
	for x := 1; x <= 5; x++ {
		for y := 1; y <= 5; y++ {
			out = append(out, fmt.Sprintf("Brand#%d%d", x, y))
		}
	}
	return out
}()

// Row counts at scale 1.0; only the facts scale.
var stringsBaseSizes = map[string]int{
	"lineitem": 30000,
	"orders":   7500,
	"customer": 1500,
	"part":     1000,
	"supplier": 100,
}

// nullEvery: one lineitem row in this many has a NULL l_returnflag.
const nullEvery = 12

// skewPick draws an index into a vocabulary with a quadratic skew toward
// the front (popular values dominate, as in real categorical columns).
func skewPick(rng *rand.Rand, n int) int {
	r := rng.Float64()
	i := int(r * r * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// StringsDB builds the TPC-H-shaped typed database: facts scale linearly,
// dimensions are fixed, content is deterministic in seed. Every table
// carries the uniform 0..999 selectivity-control column "u"; string
// columns are dictionary-encoded with skewed value frequencies, and
// lineitem.l_returnflag is nullable.
func StringsDB(scale float64, seed int64) *storage.Database {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))

	sizes := make(map[string]int, len(stringsBaseSizes))
	for t, n := range stringsBaseSizes {
		if t == "lineitem" || t == "orders" {
			n = int(float64(n) * scale)
			if n < 100 {
				n = 100
			}
		}
		sizes[t] = n
	}

	// One dictionary per string domain; nations shared across two tables.
	nationDict := value.NewDict()
	encode := func(d *value.Dict, vocab []string) []int64 {
		codes := make([]int64, len(vocab))
		for i, s := range vocab {
			codes[i] = d.Code(s)
		}
		return codes
	}
	nationCodes := encode(nationDict, Nations)
	modeDict := value.NewDict()
	modeCodes := encode(modeDict, ShipModes)
	prioDict := value.NewDict()
	prioCodes := encode(prioDict, Priorities)
	segDict := value.NewDict()
	segCodes := encode(segDict, Segments)
	flagDict := value.NewDict()
	flagCodes := encode(flagDict, ReturnFlags)
	brandDict := value.NewDict()
	brandCodes := encode(brandDict, Brands)

	lineitem := catalog.NewTypedRelation("lineitem",
		catalog.Column{Name: "l_orderkey"},
		catalog.Column{Name: "l_partkey"},
		catalog.Column{Name: "l_suppkey"},
		catalog.Column{Name: "l_shipmode", Type: value.String, Dict: modeDict},
		catalog.Column{Name: "l_returnflag", Type: value.String, Nullable: true, Dict: flagDict},
		catalog.Column{Name: "l_quantity"},
		catalog.Column{Name: "u"},
	)
	orders := catalog.NewTypedRelation("orders",
		catalog.Column{Name: "o_orderkey"},
		catalog.Column{Name: "o_custkey"},
		catalog.Column{Name: "o_orderpriority", Type: value.String, Dict: prioDict},
		catalog.Column{Name: "u"},
	)
	customer := catalog.NewTypedRelation("customer",
		catalog.Column{Name: "c_custkey"},
		catalog.Column{Name: "c_mktsegment", Type: value.String, Dict: segDict},
		catalog.Column{Name: "c_nation", Type: value.String, Dict: nationDict},
		catalog.Column{Name: "u"},
	)
	part := catalog.NewTypedRelation("part",
		catalog.Column{Name: "p_partkey"},
		catalog.Column{Name: "p_brand", Type: value.String, Dict: brandDict},
		catalog.Column{Name: "u"},
	)
	supplier := catalog.NewTypedRelation("supplier",
		catalog.Column{Name: "s_suppkey"},
		catalog.Column{Name: "s_nation", Type: value.String, Dict: nationDict},
		catalog.Column{Name: "u"},
	)

	sch := catalog.NewSchema(lineitem, orders, customer, part, supplier)
	sch.MustAddFK("lineitem", "l_orderkey", "orders", "o_orderkey")
	sch.MustAddFK("lineitem", "l_partkey", "part", "p_partkey")
	sch.MustAddFK("lineitem", "l_suppkey", "supplier", "s_suppkey")
	sch.MustAddFK("orders", "o_custkey", "customer", "c_custkey")
	db := storage.NewDatabase(sch)

	uCol := func(n int) []int64 {
		u := make([]int64, n)
		for i := range u {
			u[i] = int64(rng.Intn(1000))
		}
		return u
	}
	ident := func(n int) []int64 {
		k := make([]int64, n)
		for i := range k {
			k[i] = int64(i)
		}
		return k
	}
	skewed := func(n int, codes []int64) []int64 {
		c := make([]int64, n)
		for i := range c {
			c[i] = codes[skewPick(rng, len(codes))]
		}
		return c
	}
	fk := func(n, parent int) []int64 {
		c := make([]int64, n)
		for i := range c {
			c[i] = int64(rng.Intn(parent))
		}
		return c
	}
	mustPut := func(rel *catalog.Relation, cols ...[]int64) {
		t, err := storage.FromColumns(rel, cols...)
		if err != nil {
			panic("workload: strings substrate: " + err.Error())
		}
		db.Put(t)
	}

	// Dimension tables first (the facts draw foreign keys from their sizes).
	nSupp, nCust, nPart := sizes["supplier"], sizes["customer"], sizes["part"]
	mustPut(supplier, ident(nSupp), skewed(nSupp, nationCodes), uCol(nSupp))
	mustPut(customer, ident(nCust), skewed(nCust, segCodes), skewed(nCust, nationCodes), uCol(nCust))
	mustPut(part, ident(nPart), skewed(nPart, brandCodes), uCol(nPart))

	nOrd := sizes["orders"]
	mustPut(orders, ident(nOrd), fk(nOrd, nCust), skewed(nOrd, prioCodes), uCol(nOrd))

	nLine := sizes["lineitem"]
	flags := skewed(nLine, flagCodes)
	for i := range flags {
		if i%nullEvery == 0 {
			flags[i] = value.NullCode // not returned: flag unknown
		}
	}
	qty := make([]int64, nLine)
	for i := range qty {
		qty[i] = int64(1 + rng.Intn(50))
	}
	mustPut(lineitem,
		fk(nLine, nOrd), fk(nLine, nPart), fk(nLine, nSupp),
		skewed(nLine, modeCodes), flags, qty, uCol(nLine))
	return db
}

// StringsGen draws string-predicate queries over the StringsDB schema.
type StringsGen struct {
	rng *rand.Rand
}

// NewStringsGen creates a deterministic generator.
func NewStringsGen(seed int64) *StringsGen {
	return &StringsGen{rng: rand.New(rand.NewSource(seed))}
}

// Generate draws n queries cycling over four TPC-H-flavored shapes:
// priority/ship-mode scans, brand scans with a NOT NULL guard, the
// supplier ⋈ customer nation join (a cross-relation STRING join), and a
// customer-segment drill-down with an IS NULL needle.
func (g *StringsGen) Generate(n int) []*query.Query {
	out := make([]*query.Query, n)
	for i := range out {
		out[i] = g.one(i)
	}
	return out
}

// pickStrings draws up to k distinct values from vocab, skewed.
func (g *StringsGen) pickStrings(vocab []string, k int) []string {
	seen := map[string]bool{}
	var out []string
	for tries := 0; len(out) < k && tries < 8*k; tries++ {
		s := vocab[skewPick(g.rng, len(vocab))]
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// uFilter returns a range filter on alias.u with the given fractional
// selectivity (width / 1000).
func (g *StringsGen) uFilter(alias string, width int64) query.Filter {
	lo := int64(g.rng.Intn(int(1000 - width + 1)))
	return query.Filter{Alias: alias, Col: "u", Lo: lo, Hi: lo + width - 1}
}

func (g *StringsGen) one(idx int) *query.Query {
	q := &query.Query{Tag: fmt.Sprintf("str-%d", idx)}
	switch idx % 4 {
	case 0: // urgent orders by ship mode
		q.Rels = []query.RelRef{{Table: "lineitem"}, {Table: "orders"}}
		q.Joins = []query.Join{{LeftAlias: "lineitem", LeftCol: "l_orderkey", RightAlias: "orders", RightCol: "o_orderkey"}}
		q.Filters = []query.Filter{
			{Alias: "orders", Col: "o_orderpriority", Kind: query.KindStrings, Strs: g.pickStrings(Priorities, 2)},
			{Alias: "lineitem", Col: "l_shipmode", Kind: query.KindStrings, Strs: g.pickStrings(ShipModes, 2)},
			g.uFilter("lineitem", 400),
		}
	case 1: // returned volume by brand
		q.Rels = []query.RelRef{{Table: "lineitem"}, {Table: "part"}}
		q.Joins = []query.Join{{LeftAlias: "lineitem", LeftCol: "l_partkey", RightAlias: "part", RightCol: "p_partkey"}}
		q.Filters = []query.Filter{
			{Alias: "part", Col: "p_brand", Kind: query.KindStrings, Strs: g.pickStrings(Brands, 3)},
			{Alias: "lineitem", Col: "l_returnflag", Kind: query.KindIsNotNull},
			g.uFilter("lineitem", 400),
		}
	case 2: // local suppliers: the cross-relation STRING join on nation
		q.Rels = []query.RelRef{{Table: "lineitem"}, {Table: "supplier"}, {Table: "customer"}}
		q.Joins = []query.Join{
			{LeftAlias: "lineitem", LeftCol: "l_suppkey", RightAlias: "supplier", RightCol: "s_suppkey"},
			{LeftAlias: "supplier", LeftCol: "s_nation", RightAlias: "customer", RightCol: "c_nation"},
		}
		q.Filters = []query.Filter{
			{Alias: "customer", Col: "c_mktsegment", Kind: query.KindStrings, Strs: g.pickStrings(Segments, 1)},
			g.uFilter("lineitem", 200),
		}
	default: // segment drill-down with an IS NULL needle
		q.Rels = []query.RelRef{{Table: "lineitem"}, {Table: "orders"}, {Table: "customer"}}
		q.Joins = []query.Join{
			{LeftAlias: "lineitem", LeftCol: "l_orderkey", RightAlias: "orders", RightCol: "o_orderkey"},
			{LeftAlias: "orders", LeftCol: "o_custkey", RightAlias: "customer", RightCol: "c_custkey"},
		}
		q.Filters = []query.Filter{
			{Alias: "customer", Col: "c_mktsegment", Kind: query.KindStrings, Strs: g.pickStrings(Segments, 2)},
			{Alias: "lineitem", Col: "l_returnflag", Kind: query.KindIsNull},
			g.uFilter("orders", 600),
		}
	}
	return q
}
