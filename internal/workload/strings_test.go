package workload

import (
	"testing"

	"github.com/roulette-db/roulette/internal/monet"
	"github.com/roulette-db/roulette/internal/qat"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/value"
)

func TestStringsDBShape(t *testing.T) {
	db := StringsDB(0.1, 7)

	// The cross-relation string join is only executable because both nation
	// columns share ONE dictionary.
	sn := db.MustTable("supplier").Rel.Column("s_nation")
	cn := db.MustTable("customer").Rel.Column("c_nation")
	if sn == nil || cn == nil || sn.Dict == nil {
		t.Fatal("nation columns missing or untyped")
	}
	if sn.Dict != cn.Dict {
		t.Fatal("supplier.s_nation and customer.c_nation must share a dictionary")
	}
	if got := sn.Dict.Len(); got != len(Nations) {
		t.Fatalf("nation dictionary has %d entries, want %d", got, len(Nations))
	}

	// The nullable column actually contains NULLs, and nothing else does.
	li := db.MustTable("lineitem")
	var nulls int
	for _, v := range li.Col("l_returnflag") {
		if v == value.NullCode {
			nulls++
		}
	}
	if nulls == 0 || nulls == li.NumRows() {
		t.Fatalf("l_returnflag NULL count = %d of %d rows", nulls, li.NumRows())
	}
	for _, v := range li.Col("l_shipmode") {
		if v == value.NullCode {
			t.Fatal("non-nullable l_shipmode contains a NULL sentinel")
		}
	}

	// Skew: the most popular ship mode should clearly dominate the least.
	counts := make(map[int64]int)
	for _, v := range li.Col("l_shipmode") {
		counts[v]++
	}
	min, max := li.NumRows(), 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 3*min {
		t.Errorf("ship-mode skew too flat: min=%d max=%d", min, max)
	}
}

func TestStringsDBDeterministic(t *testing.T) {
	a := StringsDB(0.1, 3)
	b := StringsDB(0.1, 3)
	for _, name := range a.TableNames() {
		ta, tb := a.MustTable(name), b.MustTable(name)
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s: %d vs %d rows", name, ta.NumRows(), tb.NumRows())
		}
		for _, c := range ta.Rel.Columns {
			ca, cb := ta.Col(c.Name), tb.Col(c.Name)
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("%s.%s differs at row %d", name, c.Name, i)
				}
			}
		}
	}
}

func TestStringsQueriesCompileAndAgree(t *testing.T) {
	db := StringsDB(0.05, 11)
	qs := NewStringsGen(11).Generate(12)
	if _, err := query.Compile(qs); err != nil {
		t.Fatalf("string batch does not compile: %v", err)
	}
	// Two independent tuple-at-a-time engines must agree on every query:
	// a cheap cross-check of string-predicate and NULL semantics over the
	// generated shapes (the shared engine is checked against the same
	// baseline in the bench figure and in the root package's typed tests).
	mc, _, err := monet.New(db).RunSerial(qs)
	if err != nil {
		t.Fatalf("monet baseline: %v", err)
	}
	qc, _, err := qat.New(db).RunSerial(qs)
	if err != nil {
		t.Fatalf("qat baseline: %v", err)
	}
	for i := range qs {
		if mc[i] != qc[i] {
			t.Errorf("%s: monet=%d qat=%d", qs[i].Tag, mc[i], qc[i])
		}
	}
	// The IS NULL needle shape must select something at this scale, or the
	// NULL path silently stops being covered.
	var nullShapeCount int64
	for i, q := range qs {
		if i%4 == 3 {
			nullShapeCount += mc[i]
		}
		for _, f := range q.Filters {
			if f.Kind == query.KindStrings && len(f.Strs) == 0 {
				t.Errorf("%s: empty IN list", q.Tag)
			}
		}
	}
	if nullShapeCount == 0 {
		t.Error("IS NULL query shape matched no tuples; NULL path not exercised")
	}
}
