// Package workload implements the paper's two-step query generator (§6.1):
// (1) draw a join subgraph of the chosen TPC-DS schema subset rooted at a
// channel fact, never joining facts of different channels; (2) attach
// BETWEEN predicates on the uniform 0..999 column of three randomly chosen
// relations, with unequal per-relation selectivities whose product matches
// the target query selectivity.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/tpcds"
)

// Params are the sensitivity-analysis knobs of Fig. 11. Defaults mirror the
// paper: 10% selectivity, 4 joins, snowflake-store.
type Params struct {
	Joins       int     // joins per query (relations = Joins+1)
	Selectivity float64 // total query selectivity in (0, 1]
	Kind        tpcds.SchemaKind
	Seed        int64
}

// DefaultParams returns the paper's defaults.
func DefaultParams() Params {
	return Params{Joins: 4, Selectivity: 0.10, Kind: tpcds.SnowflakeStore, Seed: 1}
}

// Generator draws queries under fixed parameters.
type Generator struct {
	p   Params
	rng *rand.Rand
}

// NewGenerator creates a generator.
func NewGenerator(p Params) *Generator {
	if p.Joins < 1 {
		p.Joins = 1
	}
	if p.Selectivity <= 0 || p.Selectivity > 1 {
		p.Selectivity = 0.10
	}
	return &Generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Generate draws n queries (the paper generates a 4096-query pool per
// configuration and samples batches from it without replacement).
func (g *Generator) Generate(n int) []*query.Query {
	out := make([]*query.Query, n)
	for i := range out {
		out[i] = g.one(i)
	}
	return out
}

// one draws a single query.
func (g *Generator) one(idx int) *query.Query {
	q := &query.Query{Tag: fmt.Sprintf("gen-%d", idx)}

	var joins []tpcds.Edge
	if g.p.Kind == tpcds.Template {
		joins = tpcds.TemplateEdges()
	} else {
		facts := tpcds.Facts(g.p.Kind)
		fact := facts[g.rng.Intn(len(facts))]
		avail := tpcds.Edges(g.p.Kind, fact)
		joins = g.subgraph(fact, avail, g.p.Joins)
	}

	// Relations: the union of edge endpoints.
	seen := map[string]bool{}
	for _, e := range joins {
		for _, t := range []string{e.Child, e.Parent} {
			if !seen[t] {
				seen[t] = true
				q.Rels = append(q.Rels, query.RelRef{Table: t})
			}
		}
	}
	for _, e := range joins {
		q.Joins = append(q.Joins, query.Join{
			LeftAlias: e.Child, LeftCol: e.ChildCol,
			RightAlias: e.Parent, RightCol: e.ParentCol,
		})
	}

	// Predicates: three random relations, unequal selectivities with the
	// target product (ratios 2 : 1 : 1/2 around the cube root).
	nPred := 3
	if len(q.Rels) < nPred {
		nPred = len(q.Rels)
	}
	sels := splitSelectivity(g.p.Selectivity, nPred)
	perm := g.rng.Perm(len(q.Rels))
	for i := 0; i < nPred; i++ {
		rel := q.Rels[perm[i]].Table
		width := int64(math.Round(sels[i] * 1000))
		if width < 1 {
			width = 1
		}
		if width > 1000 {
			width = 1000
		}
		lo := int64(0)
		if width < 1000 {
			lo = int64(g.rng.Intn(int(1000 - width + 1)))
		}
		q.Filters = append(q.Filters, query.Filter{
			Alias: rel, Col: "u", Lo: lo, Hi: lo + width - 1,
		})
	}
	return q
}

// subgraph draws a random connected subgraph with nJoins edges containing
// the fact: repeatedly attach a random edge adjacent to the current
// relation set (sub-dimension edges become available once their parent
// dimension is in).
func (g *Generator) subgraph(fact string, avail []tpcds.Edge, nJoins int) []tpcds.Edge {
	in := map[string]bool{fact: true}
	var chosen []tpcds.Edge
	used := make([]bool, len(avail))
	for len(chosen) < nJoins {
		var cands []int
		for i, e := range avail {
			if used[i] {
				continue
			}
			// Edge is attachable if exactly one endpoint is in.
			if in[e.Child] != in[e.Parent] {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			break // schema exhausted: fewer joins than requested
		}
		pick := cands[g.rng.Intn(len(cands))]
		used[pick] = true
		e := avail[pick]
		in[e.Child] = true
		in[e.Parent] = true
		chosen = append(chosen, e)
	}
	return chosen
}

// splitSelectivity factors target into n unequal selectivities (each ≤ 1)
// whose product is target.
func splitSelectivity(target float64, n int) []float64 {
	if n == 1 {
		return []float64{target}
	}
	root := math.Pow(target, 1/float64(n))
	out := make([]float64, n)
	// Spread by a factor of 2 between the widest and the narrowest; fix up
	// the last term so the product is exact.
	ratio := []float64{2, 1, 0.5}
	prod := 1.0
	for i := 0; i < n; i++ {
		r := ratio[i%len(ratio)]
		s := root * r
		if s > 1 {
			s = 1
		}
		if i == n-1 {
			s = target / prod
			if s > 1 {
				s = 1
			}
		}
		out[i] = s
		prod *= s
	}
	return out
}

// SampleBatch draws a batch of size k from pool without replacement.
func SampleBatch(rng *rand.Rand, pool []*query.Query, k int) []*query.Query {
	if k > len(pool) {
		k = len(pool)
	}
	perm := rng.Perm(len(pool))[:k]
	out := make([]*query.Query, k)
	for i, p := range perm {
		src := pool[p]
		// Queries carry batch-assigned IDs; copy so pools can be re-sampled.
		cp := *src
		out[i] = &cp
	}
	return out
}
