package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/tpcds"
)

func TestGeneratedQueriesCompile(t *testing.T) {
	for _, kind := range []tpcds.SchemaKind{
		tpcds.Template, tpcds.SnowflakeStore, tpcds.SnowflakeAll,
		tpcds.SnowstormStore, tpcds.SnowstormAll,
	} {
		p := DefaultParams()
		p.Kind = kind
		p.Seed = 42
		qs := NewGenerator(p).Generate(50)
		if len(qs) != 50 {
			t.Fatalf("%v: generated %d queries", kind, len(qs))
		}
		if _, err := query.Compile(qs); err != nil {
			t.Fatalf("%v: batch does not compile: %v", kind, err)
		}
	}
}

func TestJoinCountRespected(t *testing.T) {
	for _, j := range []int{1, 2, 3, 4, 5, 6} {
		p := DefaultParams()
		p.Joins = j
		p.Kind = tpcds.SnowflakeStore
		qs := NewGenerator(p).Generate(30)
		for _, q := range qs {
			if len(q.Joins) != j {
				t.Errorf("joins=%d: query has %d joins", j, len(q.Joins))
			}
			if len(q.Rels) != j+1 {
				t.Errorf("joins=%d: query has %d relations", j, len(q.Rels))
			}
		}
	}
}

func TestSelectivityProduct(t *testing.T) {
	for _, target := range []float64{0.0001, 0.001, 0.01, 0.1, 1.0} {
		p := DefaultParams()
		p.Selectivity = target
		qs := NewGenerator(p).Generate(20)
		for _, q := range qs {
			prod := 1.0
			for _, f := range q.Filters {
				prod *= float64(f.Hi-f.Lo+1) / 1000
			}
			// Rounding to integer range widths distorts tiny targets; allow
			// a generous band on a log scale.
			if target >= 0.001 {
				if prod < target/3 || prod > target*3 {
					t.Errorf("target %v: filter product %v", target, prod)
				}
			}
			if len(q.Filters) == 0 {
				t.Error("query without filters")
			}
		}
	}
}

func TestSplitSelectivityExact(t *testing.T) {
	for _, target := range []float64{0.5, 0.1, 0.01} {
		sels := splitSelectivity(target, 3)
		prod := 1.0
		unequal := false
		for i, s := range sels {
			if s <= 0 || s > 1 {
				t.Fatalf("selectivity %d out of range: %v", i, s)
			}
			prod *= s
			if i > 0 && math.Abs(s-sels[0]) > 1e-12 {
				unequal = true
			}
		}
		if math.Abs(prod-target) > 1e-9 {
			t.Errorf("product = %v, want %v", prod, target)
		}
		if !unequal {
			t.Error("selectivities should be unequal")
		}
	}
}

func TestSnowstormUsesSubDimensions(t *testing.T) {
	p := DefaultParams()
	p.Kind = tpcds.SnowstormStore
	p.Joins = 6
	p.Seed = 9
	qs := NewGenerator(p).Generate(200)
	found := false
	for _, q := range qs {
		for _, r := range q.Rels {
			if r.Table == "customer_address" || r.Table == "customer_demographics" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no snowstorm query used a sub-dimension in 200 draws")
	}
}

func TestSampleBatchNoReplacement(t *testing.T) {
	qs := NewGenerator(DefaultParams()).Generate(40)
	rng := rand.New(rand.NewSource(1))
	batch := SampleBatch(rng, qs, 10)
	if len(batch) != 10 {
		t.Fatalf("batch size = %d", len(batch))
	}
	seen := map[string]bool{}
	for _, q := range batch {
		if seen[q.Tag] {
			t.Errorf("duplicate query %s in batch", q.Tag)
		}
		seen[q.Tag] = true
	}
	// Oversized request clamps.
	if got := len(SampleBatch(rng, qs, 100)); got != 40 {
		t.Errorf("oversized sample = %d", got)
	}
}
