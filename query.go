package roulette

import (
	"fmt"
	"math"
	"time"

	"github.com/roulette-db/roulette/internal/query"
)

// Query is an SPJ query under construction. Build it fluently, then pass it
// to Engine.ExecuteBatch; construction errors surface at execution.
type Query struct {
	q   query.Query
	err error

	// Streaming admission metadata (see Stream.Submit); ignored in batch
	// mode, where the whole batch runs to completion together.
	priority int
	deadline time.Duration
}

// NewQuery starts a query with a user-facing tag.
func NewQuery(tag string) *Query {
	return &Query{q: query.Query{Tag: tag}}
}

func (q *Query) fail(format string, args ...any) *Query {
	if q.err == nil {
		q.err = fmt.Errorf(format, args...)
	}
	return q
}

// From adds a relation under its own name as alias.
func (q *Query) From(table string) *Query { return q.FromAs(table, table) }

// FromAs adds a relation under an explicit alias (required for self-joins).
func (q *Query) FromAs(table, alias string) *Query {
	q.q.Rels = append(q.q.Rels, query.RelRef{Table: table, Alias: alias})
	return q
}

// Join adds the equi-join predicate leftAlias.leftCol = rightAlias.rightCol.
// Each query's join graph must be connected; cycle-closing joins are
// evaluated as residual predicates.
func (q *Query) Join(leftAlias, leftCol, rightAlias, rightCol string) *Query {
	q.q.Joins = append(q.q.Joins, query.Join{
		LeftAlias: leftAlias, LeftCol: leftCol,
		RightAlias: rightAlias, RightCol: rightCol,
	})
	return q
}

// Between restricts alias.col to the inclusive range [lo, hi].
func (q *Query) Between(alias, col string, lo, hi int64) *Query {
	if lo > hi {
		return q.fail("roulette: Between(%s.%s, %d, %d): empty range", alias, col, lo, hi)
	}
	q.q.Filters = append(q.q.Filters, query.Filter{Alias: alias, Col: col, Lo: lo, Hi: hi})
	return q
}

// Eq restricts alias.col to exactly v.
func (q *Query) Eq(alias, col string, v int64) *Query { return q.Between(alias, col, v, v) }

// Lt restricts alias.col to values < v.
func (q *Query) Lt(alias, col string, v int64) *Query {
	return q.Between(alias, col, math.MinInt64, v-1)
}

// Le restricts alias.col to values <= v.
func (q *Query) Le(alias, col string, v int64) *Query {
	return q.Between(alias, col, math.MinInt64, v)
}

// Gt restricts alias.col to values > v.
func (q *Query) Gt(alias, col string, v int64) *Query {
	return q.Between(alias, col, v+1, math.MaxInt64)
}

// Ge restricts alias.col to values >= v.
func (q *Query) Ge(alias, col string, v int64) *Query {
	return q.Between(alias, col, v, math.MaxInt64)
}

// EqString restricts the string column alias.col to exactly s. The column
// must be dictionary-encoded (created via StrCol or a typed loader);
// execution fails with a type-mismatch error on an int64 column.
func (q *Query) EqString(alias, col, s string) *Query { return q.InStrings(alias, col, s) }

// InStrings restricts the string column alias.col to any of the listed
// values (SQL IN). NULL never matches.
func (q *Query) InStrings(alias, col string, vals ...string) *Query {
	if len(vals) == 0 {
		return q.fail("roulette: InStrings(%s.%s): empty value list", alias, col)
	}
	q.q.Filters = append(q.q.Filters, query.Filter{
		Alias: alias, Col: col, Kind: query.KindStrings, Strs: vals,
	})
	return q
}

// IsNull keeps only rows where alias.col is NULL.
func (q *Query) IsNull(alias, col string) *Query {
	q.q.Filters = append(q.q.Filters, query.Filter{Alias: alias, Col: col, Kind: query.KindIsNull})
	return q
}

// IsNotNull keeps only rows where alias.col is not NULL.
func (q *Query) IsNotNull(alias, col string) *Query {
	q.q.Filters = append(q.q.Filters, query.Filter{Alias: alias, Col: col, Kind: query.KindIsNotNull})
	return q
}

// CountStar makes the query's consumer COUNT(*) (the default).
func (q *Query) CountStar() *Query {
	q.q.Agg = query.Agg{Kind: query.AggCount}
	return q
}

// Sum makes the consumer SUM(alias.col).
func (q *Query) Sum(alias, col string) *Query { return q.agg(query.AggSum, alias, col) }

// Min makes the consumer MIN(alias.col).
func (q *Query) Min(alias, col string) *Query { return q.agg(query.AggMin, alias, col) }

// Max makes the consumer MAX(alias.col).
func (q *Query) Max(alias, col string) *Query { return q.agg(query.AggMax, alias, col) }

// Avg makes the consumer AVG(alias.col) (integer division).
func (q *Query) Avg(alias, col string) *Query { return q.agg(query.AggAvg, alias, col) }

func (q *Query) agg(kind query.AggKind, alias, col string) *Query {
	q.q.Agg.Kind = kind
	q.q.Agg.Alias, q.q.Agg.Col = alias, col
	return q
}

// GroupBy groups the aggregate by alias.col.
func (q *Query) GroupBy(alias, col string) *Query {
	q.q.Agg.GroupByAlias, q.q.Agg.GroupByCol = alias, col
	return q
}

// OrderByKey sorts grouped output by group key. RouLette itself never
// preserves interesting orders, so the host consumer adds the sort — this
// mirrors the paper's plan transformation.
func (q *Query) OrderByKey() *Query {
	q.q.Agg.Sorted = true
	return q
}

// Tag returns the query's tag.
func (q *Query) Tag() string { return q.q.Tag }

// WithTag renames the query. Results carry the tag; ParseSQL assigns
// positional sql-N tags, which collide when statements from separate
// parses meet in one stream.
//
// In streams with admission control, the tag also keys the query's tenant:
// the prefix before the first '/' ("gold/q17" belongs to tenant "gold", a
// bare "q17" to tenant "q17"). Tenants get weighted-fair scheduling, rate
// limits, and per-tenant SLO metrics.
func (q *Query) WithTag(tag string) *Query {
	q.q.Tag = tag
	return q
}

// WithPriority sets the query's scheduling lane for streams: among runnable
// work, higher lanes are always served first (subject to the starvation
// watchdog, which keeps lower lanes from starving forever). The default
// lane is 0; negative lanes yield to the default. Batch execution ignores
// priorities.
func (q *Query) WithPriority(p int) *Query {
	q.priority = p
	return q
}

// WithDeadline gives the query a completion deadline, measured from the
// moment it is submitted to a stream. A query whose estimated cost already
// exceeds the deadline is shed at Submit with ErrDeadlineShed; one that is
// admitted gets an urgency boost as the deadline nears, and is shed
// mid-flight (retiring with a partial count and ErrDeadlineShed) if the
// deadline passes first. 0 means no deadline. Batch execution ignores
// per-query deadlines; use Options.Deadline for whole-batch bounds.
func (q *Query) WithDeadline(d time.Duration) *Query {
	q.deadline = d
	return q
}
