package roulette

import "time"

// Group is one aggregate output row; Key is 0 for ungrouped aggregates.
// When the GROUP BY column is a string column, Label carries the decoded
// string and Key its dictionary code; a NULL group key has Key == NullValue
// (and an empty Label). OrderByKey sorts string-keyed groups by Label,
// NULL group first.
type Group struct {
	Key   int64
	Label string
	Value int64
}

// QueryResult is one query's outcome.
type QueryResult struct {
	Tag string
	// Count is the SPJ result cardinality (before aggregation).
	Count int64
	// Groups holds the host-side aggregate: one entry for plain COUNT/SUM,
	// one per key for grouped aggregates (sorted if OrderByKey was set).
	Groups []Group

	// Aborted marks a query that did not complete — the batch was cancelled
	// or timed out before its scans drained, or one of its episodes
	// faulted. Count and Groups then reflect only the work that finished
	// (lower bounds), and Err explains the cut.
	Aborted bool
	Err     error
}

// Value returns the ungrouped aggregate value (0 when grouped/empty).
func (r *QueryResult) Value() int64 {
	if len(r.Groups) == 1 {
		return r.Groups[0].Value
	}
	return 0
}

// ConvergencePoint is one episode's measured plan cost against the learned
// policy's estimate of the minimum achievable cost (Fig. 16's two series).
type ConvergencePoint struct {
	Episode   int64
	Measured  float64
	Estimated float64
}

// BatchResult summarizes a batch execution.
type BatchResult struct {
	Queries []QueryResult

	// Partial is set when at least one query was aborted (cancellation,
	// deadline, or an episode fault); the per-query Aborted flags say
	// which.
	Partial bool

	Elapsed  time.Duration
	Episodes int64
	// JoinTuples counts intermediate join output tuples — the paper's
	// implementation-independent plan-quality metric.
	JoinTuples int64

	Convergence []ConvergencePoint

	// Stats is the execution breakdown, non-nil only when
	// Options.CollectStats was set.
	Stats *Stats

	trace []EpisodeTrace
}

// Throughput returns completed queries per second; aborted queries did not
// produce a result and do not count.
func (r *BatchResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	n := 0
	for i := range r.Queries {
		if !r.Queries[i].Aborted {
			n++
		}
	}
	return float64(n) / r.Elapsed.Seconds()
}

// Trace returns the batch's episode trace, oldest first: the last
// Options.TraceEpisodes episodes (nil when tracing was off). The returned
// slice is owned by the result; callers must not mutate it.
func (r *BatchResult) Trace() []EpisodeTrace { return r.trace }
