// Package roulette is an embeddable multi-query execution engine: a Go
// implementation of RouLette (Sioulas & Ailamaki, "Scalable Multi-Query
// Execution using Reinforcement Learning", SIGMOD 2021).
//
// RouLette executes batches of Select-Project-Join queries together,
// sharing scans, selections and join work across queries. Instead of
// optimizing before executing, it adapts a global query plan at runtime in
// vector-sized episodes, steering join and selection ordering with a
// specialized Q-learning policy that learns the long-term cost of planning
// decisions — including the benefit of sharing operators across queries.
//
// Basic use:
//
//	e := roulette.NewEngine()
//	e.MustCreateTable("fact", roulette.Col("fk", fk...), roulette.Col("v", v...))
//	e.MustCreateTable("dim", roulette.Col("k", k...), roulette.Col("g", g...))
//
//	q := roulette.NewQuery("q1").
//		From("fact").From("dim").
//		Join("fact", "fk", "dim", "k").
//		Between("fact", "v", 10, 20).
//		CountStar()
//
//	res, err := e.ExecuteBatch([]*roulette.Query{q}, nil)
//	fmt.Println(res.Queries[0].Count)
package roulette

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/catalog"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/host"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
	"github.com/roulette-db/roulette/internal/sharing"
	"github.com/roulette-db/roulette/internal/storage"
	"github.com/roulette-db/roulette/internal/value"
)

// NullValue is the in-band physical encoding of SQL NULL in int64 column
// data and group keys (math.MinInt64). The engine reserves it: NULL never
// satisfies a filter and never matches a join key. Nullable int64 columns
// therefore reject math.MinInt64 as regular data.
const NullValue int64 = value.NullCode

// Column is a named column used to create tables. Exactly one of Data
// (int64) or Strs (string) holds the values; string columns are
// dictionary-encoded to dense int64 codes at CreateTable, and the engine
// executes over the codes (late materialization over columnar storage).
// A non-nil Valid mask makes the column nullable: Valid[r] == false marks
// row r as NULL.
type Column struct {
	Name  string
	Data  []int64
	Strs  []string
	Valid []bool
}

// Col is a convenience constructor for an int64 Column.
func Col(name string, data ...int64) Column { return Column{Name: name, Data: data} }

// ColSlice wraps an existing slice without copying.
func ColSlice(name string, data []int64) Column { return Column{Name: name, Data: data} }

// StrCol builds a dictionary-encoded string Column.
func StrCol(name string, data ...string) Column { return Column{Name: name, Strs: data} }

// StrColSlice wraps an existing string slice without copying.
func StrColSlice(name string, data []string) Column { return Column{Name: name, Strs: data} }

// NullableCol builds a nullable int64 Column; valid[r] == false marks row r
// as NULL (data[r] is then ignored).
func NullableCol(name string, data []int64, valid []bool) Column {
	return Column{Name: name, Data: data, Valid: valid}
}

// NullableStrCol builds a nullable dictionary-encoded string Column;
// valid[r] == false marks row r as NULL (data[r] is then ignored).
func NullableStrCol(name string, data []string, valid []bool) Column {
	return Column{Name: name, Strs: data, Valid: valid}
}

// Engine owns an in-memory columnar database and executes query batches
// over it.
type Engine struct {
	schema *catalog.Schema
	db     *storage.Database

	calOnce    sync.Once
	calibrated *cost.Model
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	sch := catalog.NewSchema()
	return &Engine{schema: sch, db: storage.NewDatabase(sch)}
}

// CreateTable registers a table from columns, which must all have the same
// length. String columns are dictionary-encoded (each gets its own fresh
// dictionary — use ShareDictionary afterwards to make string columns
// joinable across tables), and columns with a Valid mask become nullable.
func (e *Engine) CreateTable(name string, cols ...Column) error {
	if len(cols) == 0 {
		return fmt.Errorf("roulette: table %q needs at least one column", name)
	}
	if e.db.Table(name) != nil {
		return fmt.Errorf("roulette: table %q already exists", name)
	}
	rows := func(c Column) int {
		if c.Strs != nil {
			return len(c.Strs)
		}
		return len(c.Data)
	}
	n := rows(cols[0])
	schemaCols := make([]catalog.Column, len(cols))
	data := make([][]int64, len(cols))
	for i, c := range cols {
		if c.Data != nil && c.Strs != nil {
			return fmt.Errorf("roulette: table %q column %q sets both Data and Strs", name, c.Name)
		}
		if rows(c) != n {
			return fmt.Errorf("roulette: table %q column %q has %d rows, want %d", name, c.Name, rows(c), n)
		}
		if c.Valid != nil && len(c.Valid) != n {
			return fmt.Errorf("roulette: table %q column %q has %d validity bits, want %d", name, c.Name, len(c.Valid), n)
		}
		nullable := c.Valid != nil
		switch {
		case c.Strs != nil:
			dict := storage.NewDict()
			phys := make([]int64, n)
			for r, s := range c.Strs {
				if nullable && !c.Valid[r] {
					phys[r] = value.NullCode
				} else {
					phys[r] = dict.Code(s)
				}
			}
			schemaCols[i] = catalog.Column{Name: c.Name, Type: value.String, Nullable: nullable, Dict: dict}
			data[i] = phys
		case nullable:
			phys := make([]int64, n)
			for r, v := range c.Data {
				if !c.Valid[r] {
					phys[r] = value.NullCode
				} else if v == value.NullCode {
					return fmt.Errorf("roulette: table %q column %q row %d: math.MinInt64 is reserved as the NULL sentinel", name, c.Name, r)
				} else {
					phys[r] = v
				}
			}
			schemaCols[i] = catalog.Column{Name: c.Name, Nullable: true}
			data[i] = phys
		default:
			schemaCols[i] = catalog.Column{Name: c.Name}
			data[i] = c.Data
		}
	}
	rel := catalog.NewTypedRelation(name, schemaCols...)
	if err := e.schema.AddRelation(rel); err != nil {
		return err
	}
	t, err := storage.FromColumns(rel, data...)
	if err != nil {
		return err
	}
	e.db.Put(t)
	return nil
}

// ShareDictionary unifies the dictionaries behind the named string columns
// (each ref is "table.col") so their codes are directly comparable — the
// prerequisite for joining string columns, which the engine compares by
// dictionary code. Codes already stored are remapped in place; every other
// column sharing a merged dictionary is remapped along with it, so the
// operation is safe to apply after arbitrary prior unifications.
func (e *Engine) ShareDictionary(refs ...string) error {
	if len(refs) < 2 {
		return fmt.Errorf("roulette: ShareDictionary needs at least two columns, got %d", len(refs))
	}
	type colRef struct {
		table, col string
		cat        *catalog.Column
	}
	parsed := make([]colRef, len(refs))
	for i, ref := range refs {
		dot := strings.IndexByte(ref, '.')
		if dot <= 0 || dot == len(ref)-1 {
			return fmt.Errorf("roulette: ShareDictionary ref %q is not of the form table.col", ref)
		}
		table, col := ref[:dot], ref[dot+1:]
		if e.db.Table(table) == nil {
			return fmt.Errorf("roulette: ShareDictionary: unknown table %q", table)
		}
		c := e.schema.Relation(table).Column(col)
		if c == nil {
			return fmt.Errorf("roulette: ShareDictionary: table %q has no column %q", table, col)
		}
		if c.Type != value.String || c.Dict == nil {
			return fmt.Errorf("roulette: ShareDictionary: %s is not a string column", ref)
		}
		parsed[i] = colRef{table: table, col: col, cat: c}
	}
	target := parsed[0].cat.Dict
	for _, p := range parsed[1:] {
		old := p.cat.Dict
		if old == target {
			continue
		}
		remap := target.Merge(old)
		// Remap every column in the database that used the old dictionary,
		// not just the named one — dictionaries can already be shared.
		for _, tn := range e.db.TableNames() {
			t := e.db.MustTable(tn)
			for ci := range t.Rel.Columns {
				c := &t.Rel.Columns[ci]
				if c.Dict != old {
					continue
				}
				col := t.Col(c.Name)
				for r, v := range col {
					if v != value.NullCode {
						col[r] = remap[v]
					}
				}
				c.Dict = target
			}
		}
	}
	return nil
}

// MustCreateTable is CreateTable, panicking on error (for setup code).
func (e *Engine) MustCreateTable(name string, cols ...Column) {
	if err := e.CreateTable(name, cols...); err != nil {
		panic(err)
	}
}

// Database exposes the underlying storage for advanced integrations (the
// benchmark harness loads pre-generated substrates through this).
func (e *Engine) Database() *storage.Database { return e.db }

// NewEngineOn wraps an existing database (substrate generators).
func NewEngineOn(db *storage.Database) *Engine {
	return &Engine{schema: db.Schema, db: db}
}

// PolicyKind selects the planning policy for a batch.
type PolicyKind int

// Available planning policies.
const (
	// PolicyLearned is RouLette's Q-learning policy (the default).
	PolicyLearned PolicyKind = iota
	// PolicyGreedy is the CACQ/CJOIN selectivity heuristic.
	PolicyGreedy
	// PolicyRandom explores uniformly (debugging, lower bounds).
	PolicyRandom
	// PolicyStitchShare replays per-query optimizer plans, sharing common
	// prefixes (the QPipe/SharedDB online-sharing strategy).
	PolicyStitchShare
	// PolicyMatchShare extends the global plan query by query with maximum
	// overlap (the DataPath strategy).
	PolicyMatchShare
)

// Admission staggers query activation for dynamic workloads: the listed
// query indexes are admitted once the given fraction of the batch's largest
// relation has been scanned.
type Admission struct {
	AfterFraction float64
	Queries       []int
}

// Options tune batch execution. The zero value (or nil) uses the paper's
// defaults: learned policy, 1024-tuple vectors, one worker, every executor
// optimization on.
type Options struct {
	Policy     PolicyKind
	Workers    int
	VectorSize int

	// Seed makes the learned/random policies deterministic.
	Seed int64

	// DisablePruning, DisableGroupedFilters, DisableLocalityRouter and
	// DisableAdaptiveProjections switch off individual §5 optimizations
	// (ablation studies).
	DisablePruning             bool
	DisableGroupedFilters      bool
	DisableLocalityRouter      bool
	DisableAdaptiveProjections bool

	// DiscardRows keeps only result counts (large throughput benchmarks).
	DiscardRows bool

	// TrackConvergence records per-episode measured and estimated costs.
	TrackConvergence bool

	// Admissions activates queries during the run instead of at the start.
	Admissions []Admission

	// CalibrateCostModel micro-benchmarks the executor's operator classes on
	// this machine and fits the cost model by linear regression (§4.3),
	// replacing the paper's Xeon-tuned constants. Calibration runs once per
	// Engine and takes a few tens of milliseconds.
	CalibrateCostModel bool

	// Deadline bounds the whole batch execution; 0 means no deadline. A
	// batch exceeding it is cancelled cooperatively and returns partial
	// results (BatchResult.Partial, per-query Aborted/Err). Composes with
	// any deadline already on the ExecuteBatchContext context.
	Deadline time.Duration

	// EpisodeWatchdog flags any single episode running longer than this as
	// a stall fault and cancels the rest of the batch; 0 disables it.
	EpisodeWatchdog time.Duration

	// CollectStats attaches an execution breakdown (BatchResult.Stats):
	// per-query episodes and elapsed time, per-operator-class work, STeM
	// traffic and memory, policy decision counters, and the sharing factor.
	// Counters accumulate in per-worker arenas and fold at episode
	// boundaries, so the overhead is a few percent and the stats-off path is
	// untouched.
	CollectStats bool

	// TraceEpisodes retains the last N episodes as records carrying the
	// chosen action sequence, active query count, cost, and duration
	// (BatchResult.Trace, WriteTraceJSONL). 0 disables tracing. On streams
	// the same ring additionally interleaves admission rejections, deadline
	// sheds, and urgency-lane promotions as control-plane event records.
	TraceEpisodes int

	// Logger receives the engine's structured diagnostics — most notably
	// the stall watchdog's reports (StreamOptions.StallWatchdog). Nil
	// discards everything; execution never logs on the hot path either way.
	Logger *slog.Logger

	// PolicyStore warm-starts the learned policy from (and exports it back
	// into) a template-keyed snapshot cache, so recurring workloads skip
	// the exploration earlier runs already paid for. Only PolicyLearned
	// uses it; a cold (or nil) store leaves execution bit-for-bit
	// identical to a run without one. On batches the import happens before
	// the run and the export after it; on streams, at every Submit and
	// every retirement sweep (plus Close). See NewPolicyStore.
	PolicyStore *PolicyStore
}

// execOptions converts Options to the internal executor options.
func (o *Options) execOptions() exec.Options {
	opt := exec.DefaultOptions()
	if o == nil {
		return opt
	}
	if o.VectorSize > 0 {
		opt.VectorSize = o.VectorSize
	}
	opt.Pruning = !o.DisablePruning
	opt.GroupedFilters = !o.DisableGroupedFilters
	opt.LocalityRouter = !o.DisableLocalityRouter
	opt.AdaptiveProjections = !o.DisableAdaptiveProjections
	opt.CollectRows = !o.DiscardRows
	opt.CollectStats = o.CollectStats
	opt.TraceActions = o.TraceEpisodes > 0
	return opt
}

// ExecuteBatch compiles and runs a batch of queries to completion, sharing
// work across them, and returns per-query results.
func (e *Engine) ExecuteBatch(qs []*Query, o *Options) (*BatchResult, error) {
	return e.ExecuteBatchContext(context.Background(), qs, o)
}

// ExecuteBatchContext is ExecuteBatch under a context. Cancellation (or an
// expired deadline) stops the batch cooperatively at the next episode
// boundary and returns what finished: the result has Partial set and every
// query carries a completed/aborted status, so callers still get exact
// counts for the queries that drained before the cut.
func (e *Engine) ExecuteBatchContext(ctx context.Context, qs []*Query, o *Options) (*BatchResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("roulette: empty batch")
	}
	inner := make([]*query.Query, len(qs))
	for i, q := range qs {
		if q.err != nil {
			return nil, fmt.Errorf("roulette: query %q: %w", q.q.Tag, q.err)
		}
		if o != nil && o.DiscardRows && (q.q.Agg.Kind.NeedsColumn() || q.q.Agg.GroupByAlias != "") {
			return nil, fmt.Errorf("roulette: query %q: DiscardRows keeps only counts, but the query's aggregate needs result rows", q.q.Tag)
		}
		cp := q.q // copy: Compile assigns batch-local IDs
		inner[i] = &cp
	}
	b, err := query.Compile(inner)
	if err != nil {
		return nil, err
	}

	opt := o.execOptions()
	cfg := engine.Config{Exec: opt}
	var ring *metrics.Ring
	if o != nil {
		cfg.Workers = o.Workers
		cfg.TrackConvergence = o.TrackConvergence
		cfg.SessionDeadline = o.Deadline
		cfg.EpisodeWatchdog = o.EpisodeWatchdog
		cfg.Logger = o.Logger
		if o.TraceEpisodes > 0 {
			ring = metrics.NewRing(o.TraceEpisodes)
			cfg.Trace = ring
		}
		if o.CalibrateCostModel {
			e.calOnce.Do(func() {
				seed := o.Seed
				if seed == 0 {
					seed = 1
				}
				e.calibrated = exec.CalibrateModel(seed)
			})
			cfg.Model = e.calibrated
		}
	}

	pol, err := e.buildPolicy(b, opt, o)
	if err != nil {
		return nil, err
	}
	cfg.Policy = pol

	if o != nil && len(o.Admissions) > 0 {
		// Trigger on the batch's largest relation instance.
		trigger, vectorsPerPass := e.largestInstance(b, opt.VectorSize)
		for _, a := range o.Admissions {
			cfg.AdmitAt = append(cfg.AdmitAt, engine.AdmitEvent{
				AfterVectors: int64(a.AfterFraction * float64(vectorsPerPass)),
				Inst:         trigger,
				QIDs:         a.Queries,
			})
		}
	}

	s, err := engine.NewSession(b, e.db, cfg)
	if err != nil {
		return nil, err
	}

	// Warm start / snapshot-back: only for the learned policy, and only
	// off the run itself. A cold lookup leaves the policy untouched, so a
	// run over an empty store matches a store-less run exactly.
	var store *PolicyStore
	var learned *qlearn.Learned
	if o != nil && o.PolicyStore != nil {
		if lp, ok := pol.(*qlearn.Learned); ok {
			store, learned = o.PolicyStore, lp
		}
	}
	allLive := bitset.NewFull(b.N)
	if store != nil {
		if n := importPolicy(store, learned, b, s.Context(), allLive); n > 0 {
			metrics.Default().WarmStartedQueries.Add(int64(b.N))
		}
	}

	res, err := s.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if store != nil {
		exportPolicy(store, learned, b, s.Context(), allLive)
	}
	return e.buildResult(b, s, res, ring)
}

// decodeGroups fills Group.Label for string-typed GROUP BY keys and, when
// the query asked for key order, re-sorts by the decoded label (the host
// consumer sorted by dictionary code, which is not lexicographic).
func (e *Engine) decodeGroups(b *query.Batch, qid int, qr *QueryResult) {
	q := b.Queries[qid]
	if q.Agg.GroupByAlias == "" || len(qr.Groups) == 0 {
		return
	}
	inst, ok := b.InstOfAlias(qid, q.Agg.GroupByAlias)
	if !ok {
		return
	}
	rel := e.schema.Relation(b.Insts[inst].Table)
	if rel == nil {
		return
	}
	c := rel.Column(q.Agg.GroupByCol)
	if c == nil || c.Type != value.String || c.Dict == nil {
		return
	}
	for i := range qr.Groups {
		if qr.Groups[i].Key != NullValue {
			qr.Groups[i].Label = c.Dict.Value(qr.Groups[i].Key)
		}
	}
	if q.Agg.Sorted {
		sort.Slice(qr.Groups, func(i, j int) bool {
			a, bg := qr.Groups[i], qr.Groups[j]
			if (a.Key == NullValue) != (bg.Key == NullValue) {
				return a.Key == NullValue
			}
			return a.Label < bg.Label
		})
	}
}

// buildPolicy instantiates the requested planning policy.
func (e *Engine) buildPolicy(b *query.Batch, opt exec.Options, o *Options) (policy.Policy, error) {
	kind := PolicyLearned
	var seed int64 = 1
	if o != nil {
		kind = o.Policy
		if o.Seed != 0 {
			seed = o.Seed
		}
	}
	// NumSelOps needs a context; build a throwaway one only when required.
	numSelOps := func() (int, error) {
		ctx, err := exec.NewContext(b, e.db, opt, nil)
		if err != nil {
			return 0, err
		}
		return ctx.NumSelOps(), nil
	}
	switch kind {
	case PolicyLearned:
		cfg := qlearn.DefaultConfig()
		cfg.Seed = seed
		return qlearn.New(cfg), nil
	case PolicyGreedy:
		n, err := numSelOps()
		if err != nil {
			return nil, err
		}
		return policy.NewGreedy(b, n), nil
	case PolicyRandom:
		return policy.NewRandom(seed), nil
	case PolicyStitchShare:
		orders, err := sharing.StitchShareOrders(b, e.db)
		if err != nil {
			return nil, err
		}
		n, err := numSelOps()
		if err != nil {
			return nil, err
		}
		return policy.NewStatic(orders, n), nil
	case PolicyMatchShare:
		n, err := numSelOps()
		if err != nil {
			return nil, err
		}
		return policy.NewStatic(sharing.MatchShareOrders(b, e.db, nil), n), nil
	}
	return nil, fmt.Errorf("roulette: unknown policy %d", kind)
}

// largestInstance finds the admission trigger instance and its pass length.
func (e *Engine) largestInstance(b *query.Batch, vectorSize int) (query.InstID, int) {
	best, bestRows := query.InstID(0), -1
	for i, in := range b.Insts {
		rows := e.db.MustTable(in.Table).NumRows()
		if rows > bestRows {
			best, bestRows = query.InstID(i), rows
		}
	}
	if vectorSize <= 0 {
		vectorSize = 1024
	}
	return best, (bestRows + vectorSize - 1) / vectorSize
}

// buildResult drains host-side consumers into the public result shape.
func (e *Engine) buildResult(b *query.Batch, s *engine.Session, res *engine.Results, ring *metrics.Ring) (*BatchResult, error) {
	out := &BatchResult{
		Elapsed:    res.Elapsed,
		Episodes:   res.Episodes,
		JoinTuples: res.JoinTuples,
	}
	for _, c := range res.Convergence {
		out.Convergence = append(out.Convergence, ConvergencePoint{
			Episode: c.Episode, Measured: c.Measured, Estimated: c.Estimated,
		})
	}
	hostRes, err := host.ConsumeAll(e.db, b, s.Context())
	if err != nil {
		return nil, err
	}
	out.Partial = res.Partial
	out.Queries = make([]QueryResult, b.N)
	for qid := range out.Queries {
		qr := QueryResult{Tag: b.Queries[qid].Tag, Count: res.Counts[qid]}
		if qid < len(res.Status) && !res.Status[qid].Completed {
			qr.Aborted = true
			qr.Err = res.Status[qid].Err
		}
		for _, g := range hostRes[qid].Groups {
			qr.Groups = append(qr.Groups, Group{Key: g.Key, Value: g.Value})
		}
		e.decodeGroups(b, qid, &qr)
		out.Queries[qid] = qr
	}

	if res.Stats != nil {
		tags := make([]string, b.N)
		for qid := range tags {
			tags[qid] = b.Queries[qid].Tag
		}
		out.Stats = newStats(res.Stats, tags)
	}
	if ring != nil {
		for _, rec := range ring.Snapshot() {
			tr := EpisodeTrace{
				Episode:       rec.Episode,
				ActiveQueries: rec.ActiveQueries,
				Input:         rec.Input,
				JoinInput:     rec.JoinInput,
				Cost:          rec.Cost,
				Duration:      rec.Duration,
				SelActions:    rec.SelActions,
				JoinActions:   rec.JoinActions,
				Fault:         rec.Fault,
			}
			if rec.Inst >= 0 && rec.Inst < len(b.Insts) {
				tr.Table = b.Insts[rec.Inst].Table
			}
			out.trace = append(out.trace, tr)
		}
	}
	return out, nil
}
