package roulette

import (
	"math/rand"
	"testing"
)

// fixture builds a small engine: fact(fk, v) ⋈ dim(k, g).
func fixture(t *testing.T) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	const nf, nd = 500, 25
	fk := make([]int64, nf)
	v := make([]int64, nf)
	for i := range fk {
		fk[i] = int64(rng.Intn(nd))
		v[i] = int64(rng.Intn(100))
	}
	k := make([]int64, nd)
	g := make([]int64, nd)
	for i := range k {
		k[i] = int64(i)
		g[i] = int64(i % 4)
	}
	e := NewEngine()
	e.MustCreateTable("fact", ColSlice("fk", fk), ColSlice("v", v))
	e.MustCreateTable("dim", ColSlice("k", k), ColSlice("g", g))
	return e
}

func TestExecuteBatchCount(t *testing.T) {
	e := fixture(t)
	q := NewQuery("all").From("fact").From("dim").Join("fact", "fk", "dim", "k").CountStar()
	res, err := e.ExecuteBatch([]*Query{q}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries[0].Count != 500 || res.Queries[0].Value() != 500 {
		t.Errorf("count = %d / %d, want 500", res.Queries[0].Count, res.Queries[0].Value())
	}
	if res.Throughput() <= 0 || res.Episodes == 0 {
		t.Error("missing execution stats")
	}
}

func TestExecuteBatchFiltersAndComparators(t *testing.T) {
	e := fixture(t)
	mk := func(tag string, f func(*Query) *Query) *Query {
		return f(NewQuery(tag).From("fact").From("dim").Join("fact", "fk", "dim", "k"))
	}
	qs := []*Query{
		mk("between", func(q *Query) *Query { return q.Between("fact", "v", 10, 19) }),
		mk("eq", func(q *Query) *Query { return q.Eq("dim", "g", 2) }),
		mk("lt", func(q *Query) *Query { return q.Lt("fact", "v", 50) }),
		mk("ge", func(q *Query) *Query { return q.Ge("fact", "v", 50) }),
	}
	res, err := e.ExecuteBatch(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// lt + ge partition the fact rows.
	if res.Queries[2].Count+res.Queries[3].Count != 500 {
		t.Errorf("lt+ge = %d + %d, want 500", res.Queries[2].Count, res.Queries[3].Count)
	}
	if res.Queries[0].Count <= 0 || res.Queries[0].Count >= 500 {
		t.Errorf("between count = %d, expected a proper subset", res.Queries[0].Count)
	}
}

func TestGroupedSum(t *testing.T) {
	e := fixture(t)
	q := NewQuery("gsum").From("fact").From("dim").
		Join("fact", "fk", "dim", "k").
		Sum("fact", "v").GroupBy("dim", "g").OrderByKey()
	res, err := e.ExecuteBatch([]*Query{q}, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Queries[0].Groups
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].Key <= groups[i-1].Key {
			t.Error("groups not sorted by key")
		}
	}
}

func TestAllPoliciesAgree(t *testing.T) {
	e := fixture(t)
	var want int64 = -1
	for _, pol := range []PolicyKind{PolicyLearned, PolicyGreedy, PolicyRandom, PolicyStitchShare, PolicyMatchShare} {
		qs := []*Query{
			NewQuery("a").From("fact").From("dim").Join("fact", "fk", "dim", "k").Between("fact", "v", 0, 49),
			NewQuery("b").From("fact").From("dim").Join("fact", "fk", "dim", "k").Eq("dim", "g", 1),
		}
		res, err := e.ExecuteBatch(qs, &Options{Policy: pol, Seed: 3})
		if err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
		got := res.Queries[0].Count + res.Queries[1].Count*1000
		if want == -1 {
			want = got
		} else if got != want {
			t.Errorf("policy %d disagrees: %d vs %d", pol, got, want)
		}
	}
}

func TestExecuteBatchErrors(t *testing.T) {
	e := fixture(t)
	if _, err := e.ExecuteBatch(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	bad := NewQuery("bad").From("fact").Between("fact", "v", 9, 3)
	if _, err := e.ExecuteBatch([]*Query{bad}, nil); err == nil {
		t.Error("builder error not surfaced")
	}
	missing := NewQuery("missing").From("nope")
	if _, err := e.ExecuteBatch([]*Query{missing}, nil); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestCreateTableValidation(t *testing.T) {
	e := NewEngine()
	if err := e.CreateTable("t"); err == nil {
		t.Error("zero-column table accepted")
	}
	if err := e.CreateTable("t", Col("a", 1, 2), Col("b", 1)); err == nil {
		t.Error("ragged columns accepted")
	}
	if err := e.CreateTable("t", Col("a", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable("t", Col("a", 1)); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestAdmissionsOption(t *testing.T) {
	e := fixture(t)
	qs := []*Query{
		NewQuery("now").From("fact").From("dim").Join("fact", "fk", "dim", "k"),
		NewQuery("later").From("fact").From("dim").Join("fact", "fk", "dim", "k").Between("fact", "v", 0, 30),
	}
	res, err := e.ExecuteBatch(qs, &Options{
		VectorSize: 64,
		Admissions: []Admission{{AfterFraction: 0.5, Queries: []int{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries[0].Count != 500 {
		t.Errorf("query 0 count = %d", res.Queries[0].Count)
	}
	if res.Queries[1].Count <= 0 {
		t.Errorf("late-admitted query count = %d", res.Queries[1].Count)
	}
}

func TestConvergenceOption(t *testing.T) {
	e := fixture(t)
	q := NewQuery("c").From("fact").From("dim").Join("fact", "fk", "dim", "k")
	res, err := e.ExecuteBatch([]*Query{q}, &Options{TrackConvergence: true, VectorSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Convergence) == 0 {
		t.Error("no convergence points")
	}
}

func TestSelfJoinThroughAliases(t *testing.T) {
	e := NewEngine()
	e.MustCreateTable("r", Col("a", 1, 2, 3, 4), Col("b", 2, 3, 4, 5))
	q := NewQuery("self").
		FromAs("r", "x").FromAs("r", "y").
		Join("x", "b", "y", "a")
	res, err := e.ExecuteBatch([]*Query{q}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs (x,y) with x.b == y.a: b values 2,3,4 match a values 2,3,4.
	if res.Queries[0].Count != 3 {
		t.Errorf("self-join count = %d, want 3", res.Queries[0].Count)
	}
}

func TestCalibratedCostModelOption(t *testing.T) {
	e := fixture(t)
	q := NewQuery("cal").From("fact").From("dim").Join("fact", "fk", "dim", "k")
	res, err := e.ExecuteBatch([]*Query{q}, &Options{CalibrateCostModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries[0].Count != 500 {
		t.Errorf("count = %d", res.Queries[0].Count)
	}
	// Second batch reuses the calibrated model (no panic, same results).
	if _, err := e.ExecuteBatch([]*Query{q}, &Options{CalibrateCostModel: true}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscardRowsRejectsRowConsumers(t *testing.T) {
	e := fixture(t)
	q := NewQuery("s").From("fact").From("dim").Join("fact", "fk", "dim", "k").Sum("fact", "v")
	if _, err := e.ExecuteBatch([]*Query{q}, &Options{DiscardRows: true}); err == nil {
		t.Error("DiscardRows with SUM should be rejected, not silently zero")
	}
	// COUNT(*) is fine.
	c := NewQuery("c").From("fact").From("dim").Join("fact", "fk", "dim", "k").CountStar()
	if _, err := e.ExecuteBatch([]*Query{c}, &Options{DiscardRows: true}); err != nil {
		t.Fatal(err)
	}
}
