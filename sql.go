package roulette

import (
	"context"

	"github.com/roulette-db/roulette/internal/sqlfe"
)

// ParseSQL parses one SQL statement into a Query. The supported dialect is
// the SPJ block RouLette executes:
//
//	SELECT COUNT(*) | SUM | MIN | MAX | AVG ([alias.]col)
//	FROM table [[AS] alias] {, table [[AS] alias]}
//	[WHERE predicate {AND predicate}]
//	[GROUP BY [alias.]col] [ORDER BY [alias.]col]
//
// Predicates are equi-joins (a.x = b.y), integer comparisons/BETWEEN
// ranges, string equality and IN lists (col = 'lit', col IN ('a', 'b');
// a doubled single quote inside a literal escapes it), and IS [NOT] NULL.
// String columns are dictionary-encoded at load time; joining two string
// columns additionally requires a shared dictionary
// (Engine.ShareDictionary).
func ParseSQL(stmt string) (*Query, error) {
	q, err := sqlfe.Parse(stmt)
	if err != nil {
		return nil, err
	}
	return &Query{q: *q}, nil
}

// ParseSQLBatch parses semicolon-separated statements into a batch.
func ParseSQLBatch(src string) ([]*Query, error) {
	inner, err := sqlfe.ParseBatch(src)
	if err != nil {
		return nil, err
	}
	out := make([]*Query, len(inner))
	for i, q := range inner {
		out[i] = &Query{q: *q}
	}
	return out, nil
}

// ExecuteSQL parses semicolon-separated SQL statements and executes them as
// one shared batch.
func (e *Engine) ExecuteSQL(src string, o *Options) (*BatchResult, error) {
	return e.ExecuteSQLContext(context.Background(), src, o)
}

// ExecuteSQLContext is ExecuteSQL under a context; see ExecuteBatchContext
// for the cancellation and partial-result semantics.
func (e *Engine) ExecuteSQLContext(ctx context.Context, src string, o *Options) (*BatchResult, error) {
	qs, err := ParseSQLBatch(src)
	if err != nil {
		return nil, err
	}
	return e.ExecuteBatchContext(ctx, qs, o)
}
