package roulette

import "testing"

func TestExecuteSQL(t *testing.T) {
	e := fixture(t)
	res, err := e.ExecuteSQL(`
		SELECT COUNT(*) FROM fact f, dim d WHERE f.fk = d.k AND f.v BETWEEN 0 AND 49;
		SELECT SUM(f.v) FROM fact f, dim d WHERE f.fk = d.k GROUP BY d.g ORDER BY d.g;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 2 {
		t.Fatalf("queries = %d", len(res.Queries))
	}

	// Cross-check against the builder API.
	b1 := NewQuery("b1").From("fact").From("dim").Join("fact", "fk", "dim", "k").Between("fact", "v", 0, 49)
	b2 := NewQuery("b2").From("fact").From("dim").Join("fact", "fk", "dim", "k").
		Sum("fact", "v").GroupBy("dim", "g").OrderByKey()
	want, err := e.ExecuteBatch([]*Query{b1, b2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries[0].Count != want.Queries[0].Count {
		t.Errorf("SQL count %d, builder %d", res.Queries[0].Count, want.Queries[0].Count)
	}
	if len(res.Queries[1].Groups) != len(want.Queries[1].Groups) {
		t.Fatalf("groups %d vs %d", len(res.Queries[1].Groups), len(want.Queries[1].Groups))
	}
	for i := range want.Queries[1].Groups {
		if res.Queries[1].Groups[i] != want.Queries[1].Groups[i] {
			t.Errorf("group %d: %+v vs %+v", i, res.Queries[1].Groups[i], want.Queries[1].Groups[i])
		}
	}
}

func TestExecuteSQLParseError(t *testing.T) {
	e := fixture(t)
	if _, err := e.ExecuteSQL(`SELECT nope`, nil); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := ParseSQL(`SELECT COUNT(*) FROM a; SELECT COUNT(*) FROM b`); err == nil {
		t.Error("ParseSQL accepted two statements")
	}
}
