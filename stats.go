package roulette

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/metrics"
)

// OpClassStats aggregates one operator class's work across the batch.
// Tuples is the class's natural output unit: survivors for filters, inserted
// entries for builds, join outputs for probes, routed rows for routers.
type OpClassStats struct {
	Invocations int64 `json:"invocations"`
	Tuples      int64 `json:"tuples"`
	Nanos       int64 `json:"nanos"`
}

// QueryStats is one query's share of the batch execution.
type QueryStats struct {
	Tag string `json:"tag"`
	// Episodes is the number of episodes whose active set included the
	// query (its share of shared scan work).
	Episodes int64 `json:"episodes"`
	// Tuples is the query's SPJ result cardinality.
	Tuples int64 `json:"tuples"`
	// Elapsed is batch start → the query's last input vector scheduled.
	Elapsed   time.Duration `json:"elapsed_ns"`
	Completed bool          `json:"completed"`
}

// StemStats describes one relation instance's STeM (shared join state).
type StemStats struct {
	Table    string `json:"table"`
	Entries  int64  `json:"entries"`
	Inserts  int64  `json:"inserts"`
	Probes   int64  `json:"probes"`
	Matches  int64  `json:"matches"`
	EstBytes int64  `json:"est_bytes"`
}

// HitRate returns the average match tuples emitted per probe lookup against
// this STeM (0 with no probes; above 1 means key fan-out).
func (s StemStats) HitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Matches) / float64(s.Probes)
}

// PolicyStats summarizes the planning policy's behaviour over the batch.
// Explores and Exploits stay zero for policies without decision counters
// (the learned policy implements them).
type PolicyStats struct {
	// QStates is the number of explored Q-table (state, action) entries.
	QStates int `json:"qtable_states"`
	// Explores counts ε-random decisions, Exploits greedy ones.
	Explores int64 `json:"explore_actions"`
	Exploits int64 `json:"exploit_actions"`
	// PlanSwitches counts episodes whose chosen operator sequence differed
	// from the previous episode on the same relation — how often the policy
	// changed its mind mid-run.
	PlanSwitches int64 `json:"plan_switches"`
}

// SharingStats quantifies cross-query work sharing. An invocation is one
// operator applied to one vector; it is shared when it served more than one
// query at once.
type SharingStats struct {
	SharedOps     int64 `json:"shared_op_invocations"`
	TotalOps      int64 `json:"op_invocations"`
	QueriesServed int64 `json:"queries_served"`
}

// Factor returns the shared fraction of operator invocations in [0, 1].
func (s SharingStats) Factor() float64 {
	if s.TotalOps == 0 {
		return 0
	}
	return float64(s.SharedOps) / float64(s.TotalOps)
}

// FanOut returns the mean number of queries served per invocation.
func (s SharingStats) FanOut() float64 {
	if s.TotalOps == 0 {
		return 0
	}
	return float64(s.QueriesServed) / float64(s.TotalOps)
}

// Stats is the execution breakdown attached to a BatchResult when
// Options.CollectStats is set.
type Stats struct {
	Queries []QueryStats `json:"queries"`

	Filters OpClassStats `json:"filters"` // grouped + prune filters (selection phase)
	Builds  OpClassStats `json:"builds"`  // STeM inserts
	Probes  OpClassStats `json:"probes"`  // STeM probe operators
	// RouteSels counts routing selections; their time is attributed to
	// Probes.Nanos, matching the cost model's join-phase accounting.
	RouteSels OpClassStats `json:"route_sels"`
	Routers   OpClassStats `json:"routers"`

	Stems   []StemStats  `json:"stems"`
	Policy  PolicyStats  `json:"policy"`
	Sharing SharingStats `json:"sharing"`
}

// Summary renders a compact multi-line overview.
func (s *Stats) Summary() string {
	var b strings.Builder
	completed := 0
	for _, q := range s.Queries {
		if q.Completed {
			completed++
		}
	}
	fmt.Fprintf(&b, "queries: %d/%d completed\n", completed, len(s.Queries))
	fmt.Fprintf(&b, "ops: filter=%d build=%d probe=%d routesel=%d route=%d\n",
		s.Filters.Invocations, s.Builds.Invocations, s.Probes.Invocations,
		s.RouteSels.Invocations, s.Routers.Invocations)
	fmt.Fprintf(&b, "tuples: filtered=%d inserted=%d joined=%d routed=%d\n",
		s.Filters.Tuples, s.Builds.Tuples, s.Probes.Tuples, s.Routers.Tuples)
	var stemBytes int64
	for _, st := range s.Stems {
		stemBytes += st.EstBytes
	}
	fmt.Fprintf(&b, "stems: %d instances, ~%.1f MiB\n", len(s.Stems), float64(stemBytes)/(1<<20))
	fmt.Fprintf(&b, "policy: %d Q-states, %d explore / %d exploit, %d plan switches\n",
		s.Policy.QStates, s.Policy.Explores, s.Policy.Exploits, s.Policy.PlanSwitches)
	fmt.Fprintf(&b, "sharing: factor %.2f, fan-out %.1f queries/op\n",
		s.Sharing.Factor(), s.Sharing.FanOut())
	return b.String()
}

// newStats converts the engine breakdown to the public shape.
func newStats(bs *engine.BatchStats, tags []string) *Stats {
	out := &Stats{
		Filters:   OpClassStats(bs.Filters),
		Builds:    OpClassStats(bs.Builds),
		Probes:    OpClassStats(bs.Probes),
		RouteSels: OpClassStats(bs.RouteSels),
		Routers:   OpClassStats(bs.Routers),
		Policy: PolicyStats{
			QStates:      bs.Policy.QStates,
			Explores:     bs.Policy.Explores,
			Exploits:     bs.Policy.Exploits,
			PlanSwitches: bs.Policy.PlanSwitches,
		},
		Sharing: SharingStats{
			SharedOps:     bs.Sharing.SharedOps,
			TotalOps:      bs.Sharing.TotalOps,
			QueriesServed: bs.Sharing.QueriesServed,
		},
	}
	out.Queries = make([]QueryStats, len(bs.Queries))
	for i, q := range bs.Queries {
		out.Queries[i] = QueryStats{
			Tag:       tags[i],
			Episodes:  q.Episodes,
			Tuples:    q.Tuples,
			Elapsed:   q.Elapsed,
			Completed: q.Completed,
		}
	}
	out.Stems = make([]StemStats, len(bs.Stems))
	for i, st := range bs.Stems {
		out.Stems[i] = StemStats(st)
	}
	return out
}

// EpisodeTrace is one traced episode (Options.TraceEpisodes).
type EpisodeTrace struct {
	Episode int64  `json:"episode"`
	Table   string `json:"table"` // scanned relation
	// ActiveQueries is the size of the episode's active query set.
	ActiveQueries int           `json:"active_queries"`
	Input         int           `json:"input"`      // ingested tuples
	JoinInput     int           `json:"join_input"` // tuples entering the join phase
	Cost          float64       `json:"cost"`       // cost-model total over the episode log
	Duration      time.Duration `json:"duration_ns"`
	// SelActions are the chosen selection-operator IDs in application order;
	// JoinActions the probed join-edge IDs in execution order.
	SelActions  []int32 `json:"sel_actions,omitempty"`
	JoinActions []int32 `json:"join_actions,omitempty"`
	// Fault is empty for completed episodes, else the fault class
	// ("panic", "insert", "stall").
	Fault string `json:"fault,omitempty"`
}

// WriteTraceJSONL writes the batch's episode trace as JSON Lines, one
// episode per line, oldest first.
func (r *BatchResult) WriteTraceJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.trace {
		if err := enc.Encode(&r.trace[i]); err != nil {
			return err
		}
	}
	return nil
}

// MetricsHandler returns an http.Handler exposing process-wide engine
// metrics, accumulated across every batch run in this process. It serves
// the Prometheus text exposition format by default and JSON when the
// request has ?format=json or an Accept header preferring application/json.
//
//	http.Handle("/metrics", roulette.MetricsHandler())
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reg := metrics.Default()
		format := req.URL.Query().Get("format")
		if format == "json" || (format == "" && strings.Contains(req.Header.Get("Accept"), "application/json")) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(reg.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
}
