package roulette

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestStatsAndTraceRoundTrip drives the full opt-in observability path
// through the public API: CollectStats + TraceEpisodes on one batch.
func TestStatsAndTraceRoundTrip(t *testing.T) {
	e := fixture(t)
	qs := []*Query{
		NewQuery("wide").From("fact").From("dim").Join("fact", "fk", "dim", "k").CountStar(),
		NewQuery("narrow").From("fact").From("dim").Join("fact", "fk", "dim", "k").
			Between("fact", "v", 10, 60).CountStar(),
	}
	res, err := e.ExecuteBatch(qs, &Options{
		CollectStats:  true,
		TraceEpisodes: 32,
		VectorSize:    64,
	})
	if err != nil {
		t.Fatal(err)
	}

	st := res.Stats
	if st == nil {
		t.Fatal("CollectStats did not attach Stats")
	}
	if len(st.Queries) != 2 {
		t.Fatalf("per-query stats: %d entries", len(st.Queries))
	}
	for i, q := range st.Queries {
		if q.Tag != qs[i].q.Tag {
			t.Errorf("query %d: tag %q", i, q.Tag)
		}
		if q.Episodes == 0 || q.Elapsed <= 0 || !q.Completed {
			t.Errorf("query %q: %+v", q.Tag, q)
		}
		if q.Tuples != res.Queries[i].Count {
			t.Errorf("query %q: stats tuples %d != count %d", q.Tag, q.Tuples, res.Queries[i].Count)
		}
	}
	if st.Probes.Tuples != res.JoinTuples {
		t.Errorf("probe tuples %d != JoinTuples %d", st.Probes.Tuples, res.JoinTuples)
	}
	if len(st.Stems) == 0 {
		t.Fatal("no stem stats")
	}
	var probed bool
	for _, ss := range st.Stems {
		if ss.Table == "" || ss.Entries == 0 || ss.EstBytes == 0 {
			t.Errorf("stem stats %+v", ss)
		}
		if ss.Probes > 0 && ss.HitRate() > 0 {
			probed = true
		}
	}
	if !probed {
		t.Error("no STeM recorded probe traffic with matches")
	}
	if st.Policy.QStates == 0 || st.Policy.Exploits == 0 {
		t.Errorf("policy stats %+v", st.Policy)
	}
	if f := st.Sharing.Factor(); f <= 0 || f > 1 {
		t.Errorf("sharing factor %v (%+v)", f, st.Sharing)
	}
	for _, line := range []string{"queries:", "ops:", "sharing:"} {
		if !strings.Contains(st.Summary(), line) {
			t.Errorf("Summary missing %q:\n%s", line, st.Summary())
		}
	}

	trace := res.Trace()
	if len(trace) == 0 || len(trace) > 32 {
		t.Fatalf("trace holds %d records", len(trace))
	}
	var withActions bool
	for _, tr := range trace {
		if tr.Table == "" || tr.ActiveQueries <= 0 || tr.Input <= 0 {
			t.Errorf("malformed trace record %+v", tr)
		}
		if len(tr.JoinActions) > 0 {
			withActions = true
		}
	}
	if !withActions {
		t.Error("no trace record carries join actions")
	}

	var buf bytes.Buffer
	if err := res.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var tr EpisodeTrace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != len(trace) {
		t.Errorf("JSONL lines %d != trace len %d", lines, len(trace))
	}
}

// TestStatsOffByDefault pins the opt-in contract on the public surface.
func TestStatsOffByDefault(t *testing.T) {
	e := fixture(t)
	q := NewQuery("q").From("fact").From("dim").Join("fact", "fk", "dim", "k").CountStar()
	res, err := e.ExecuteBatch([]*Query{q}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil || res.Trace() != nil {
		t.Error("default run attached stats or trace")
	}
}

// TestThroughputExcludesAborted pins the Throughput fix: a partial result
// counts only completed queries.
func TestThroughputExcludesAborted(t *testing.T) {
	r := &BatchResult{
		Elapsed: 2 * time.Second,
		Queries: []QueryResult{
			{Tag: "done"},
			{Tag: "cut", Aborted: true},
			{Tag: "also-done"},
			{Tag: "also-cut", Aborted: true},
		},
		Partial: true,
	}
	if got := r.Throughput(); got != 1.0 {
		t.Errorf("Throughput = %v, want 1.0 (2 completed / 2s)", got)
	}
	if (&BatchResult{}).Throughput() != 0 {
		t.Error("zero-elapsed result should report 0")
	}
}

// TestMetricsHandler checks both exposition formats of the process-wide
// metrics endpoint after a stats-collecting run has folded into it.
func TestMetricsHandler(t *testing.T) {
	e := fixture(t)
	q := NewQuery("q").From("fact").From("dim").Join("fact", "fk", "dim", "k").CountStar()
	if _, err := e.ExecuteBatch([]*Query{q}, &Options{CollectStats: true}); err != nil {
		t.Fatal(err)
	}

	h := MetricsHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE roulette_batches_total counter",
		"# TYPE roulette_episodes_total counter",
		"roulette_op_invocations_total",
		`roulette_phase_seconds_total{phase="probe"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap["batches"].(float64); !ok || v < 1 {
		t.Errorf("json snapshot batches = %v", snap["batches"])
	}
	if v, ok := snap["episodes"].(float64); !ok || v <= 0 {
		t.Errorf("json snapshot episodes = %v", snap["episodes"])
	}

	// Accept-header negotiation without the query parameter.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("accept-negotiated content type %q", ct)
	}
}
