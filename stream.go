package roulette

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/roulette-db/roulette/internal/admission"
	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/cost"
	"github.com/roulette-db/roulette/internal/engine"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/host"
	"github.com/roulette-db/roulette/internal/metrics"
	"github.com/roulette-db/roulette/internal/obs"
	"github.com/roulette-db/roulette/internal/policy"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
)

// StreamOptions tune a long-lived stream. The embedded Options carry the
// executor and policy knobs; batch-only fields (Admissions, Deadline's
// per-batch semantics aside, TrackConvergence output, CollectStats
// breakdowns) do not apply to streams.
type StreamOptions struct {
	Options

	// MaxQueries caps the number of concurrently live (submitted, not yet
	// garbage-collected) queries; 0 means 64. Submissions beyond the cap
	// fail with ErrStreamFull until retired queries are reclaimed.
	MaxQueries int

	// Admission enables overload protection: an in-flight cost budget,
	// per-tenant rate limits and weighted-fair scheduling, and deadline
	// shedding. Nil disables admission control entirely — Submit never
	// returns ErrOverloaded and queries schedule by scan rank alone, as
	// before. Per-query deadlines (Query.WithDeadline) and priorities work
	// either way.
	Admission *AdmissionOptions

	// StallWatchdog enables background self-diagnosis: every period the
	// engine checks for stuck instance fences, stalled episodes, epoch-
	// reclamation lag, watermark lag, and starved tenants, and logs each
	// finding — naming the blocking instance, worker, and queries — through
	// Options.Logger. The same checks run on demand via Stream.Diagnose.
	// 0 disables the background check.
	StallWatchdog time.Duration
}

// TenantLimit overrides one tenant's rate limit and fairness weight.
type TenantLimit = admission.TenantLimit

// AdmissionOptions configure a stream's overload protection. Tenants are
// derived from query tags: the prefix before the first '/' (see
// Query.WithTag). The zero value admits everything but still enables
// weighted-fair scheduling and per-tenant SLO metrics.
type AdmissionOptions struct {
	// MaxInFlightCost bounds the summed estimated cost — in estimated
	// execution nanoseconds, from the engine's cost model over each query's
	// relation cardinalities — of admitted, not-yet-retired queries.
	// Submissions that would exceed it fail fast with ErrOverloaded
	// (reason "budget", with a retry-after hint from the observed drain
	// rate) before the engine's quiesce gate is touched. 0 means no budget.
	MaxInFlightCost float64

	// DefaultRate and DefaultBurst are the token-bucket parameters (cost
	// units per second, and bucket capacity) applied to tenants without an
	// explicit TenantLimit. Zero rate means no rate limiting by default.
	DefaultRate  float64
	DefaultBurst float64

	// Tenants overrides rate limits and fairness weights per tenant key.
	Tenants map[string]TenantLimit

	// DeadlineUrgency is how far ahead of a query's deadline the scheduler
	// starts boosting its episodes into the urgent lane; 0 means 1ms.
	DeadlineUrgency time.Duration

	// StarveEpisodes is the starvation watchdog threshold: a tenant with
	// live queries unserved for this many episodes jumps every priority
	// lane until it is next scheduled; 0 means 512.
	StarveEpisodes int

	// hooks are the chaos-injection points (internal/faults wires them in
	// white-box tests).
	hooks admission.Hooks
}

// streamRecorderRing is the per-ring capacity of a stream's flight
// recorder: events per worker (and for the control plane) kept before the
// oldest are overwritten. 4096 events × 64 bytes = 256 KiB per ring.
const streamRecorderRing = 4096

// ErrStreamFull is returned by Submit when every query slot is occupied by
// a live or not-yet-reclaimed query.
var ErrStreamFull = errors.New("roulette: stream at capacity (live queries not yet reclaimed)")

// ErrStreamClosed is returned by Submit after Close.
var ErrStreamClosed = errors.New("roulette: stream closed")

// ErrQueryCancelled is the default cancellation cause for Ticket.Cancel.
var ErrQueryCancelled = errors.New("roulette: query cancelled")

// ErrOverloaded is the sentinel every admission rejection matches with
// errors.Is. The concrete error is an *OverloadError carrying the tenant,
// the reason (budget or rate), and a retry-after hint; callers should back
// off for at least the hint before resubmitting.
var ErrOverloaded = admission.ErrOverloaded

// ErrDeadlineShed is the sentinel matched by queries shed for an unmeetable
// deadline — at Submit when the estimated cost already exceeds it, or
// mid-flight when it expires before the query drains. The concrete error is
// a *ShedError.
var ErrDeadlineShed = admission.ErrDeadlineShed

// OverloadError is the typed rejection behind ErrOverloaded.
type OverloadError = admission.OverloadError

// ShedError is the typed error behind ErrDeadlineShed.
type ShedError = admission.ShedError

// Ticket tracks one submitted query through a Stream. Its result is
// delivered the moment the query retires — when its scans drain, it is
// cancelled, or it is caught in a faulted episode — not when the stream
// closes.
type Ticket struct {
	s   *Stream
	qid int
	tag string

	// Admission accounting, released exactly once when the ticket resolves.
	tenant   string
	admCost  float64
	admitted bool // charged to the admission controller
	start    time.Time

	done chan struct{}
	res  QueryResult // set before done closes
}

// Done is closed when the query's result is available.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the query retires and returns its result. If ctx
// expires first, only this query is cancelled — the stream and its other
// queries keep running — and Wait still returns the query's final
// (partial, Aborted) result. The returned error is ctx's error in that
// case, nil otherwise.
func (t *Ticket) Wait(ctx context.Context) (QueryResult, error) {
	select {
	case <-t.done:
		return t.res, nil
	case <-ctx.Done():
		t.Cancel(ctx.Err())
		<-t.done
		return t.res, ctx.Err()
	}
}

// Cancel marks this query failed with the given cause (nil means
// ErrQueryCancelled). The query retires with a partial count as soon as
// its in-flight episodes drain; the rest of the stream is unaffected.
// Cancelling an already-retired query is a no-op.
func (t *Ticket) Cancel(cause error) {
	if cause == nil {
		cause = ErrQueryCancelled
	}
	t.s.sess.CancelQuery(t.qid, cause)
}

// StreamStemStat is a live snapshot of one relation instance's STeM.
type StreamStemStat struct {
	Table    string
	Entries  int64 // entries currently resident (live after GC sweeps)
	Inserts  int64 // cumulative build-side insertions
	Probes   int64 // cumulative probe lookups
	Matches  int64 // cumulative probe matches
	EstBytes int64 // estimated resident bytes (shrinks as GC reclaims)
}

// Stream is a long-lived execution session: queries are submitted at any
// time, share scans, STeMs and learned planning state with whatever else
// is running, and each retires individually with its own result. A Stream
// is safe for concurrent use.
type Stream struct {
	e    *Engine
	b    *query.Batch
	sess *engine.Session

	mu      sync.Mutex
	tickets map[int]*Ticket
	// pending holds results whose retirement callback ran before Submit
	// registered the ticket (a query can retire inside SubmitLive itself,
	// e.g. over zero-row relations).
	pending map[int]QueryResult
	resQ    []QueryResult
	resCond *sync.Cond
	closed  bool // Close called: no more submissions
	done    bool // worker pool exited: no more results

	opt     StreamOptions
	adm     *admission.Controller // nil when opt.Admission is nil
	model   *cost.Model           // admission cost estimates
	store   *PolicyStore          // nil without Options.PolicyStore
	learned *qlearn.Learned       // the stream's policy when PolicyLearned
	trace   *metrics.Ring         // episode + control-plane event trace (TraceEpisodes)
	results chan QueryResult
	resOnce sync.Once
	runDone chan struct{}
	runErr  error
}

// OpenStream starts a long-lived session over the engine's tables. The
// worker pool starts immediately and idles until the first Submit; it
// runs until Close (or ctx cancellation). Streams require an adaptive
// policy — PolicyLearned (default) or PolicyRandom; plan-replay policies
// (Greedy, StitchShare, MatchShare) fix their operator space at open time
// and cannot admit unseen queries.
func (e *Engine) OpenStream(ctx context.Context, o *StreamOptions) (*Stream, error) {
	var opt StreamOptions
	if o != nil {
		opt = *o
	}
	if opt.MaxQueries <= 0 {
		opt.MaxQueries = 64
	}
	if len(opt.Admissions) > 0 {
		return nil, fmt.Errorf("roulette: Admissions are a batch-mode option; streams admit on Submit")
	}

	var seed int64 = 1
	if opt.Seed != 0 {
		seed = opt.Seed
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	cfg := engine.Config{
		Exec:            opt.execOptions(),
		Workers:         opt.Workers,
		SessionDeadline: opt.Deadline,
		EpisodeWatchdog: opt.EpisodeWatchdog,
		Streaming:       true,
		// The flight recorder is always on: one event ring per worker plus
		// a control-plane ring, recording is lock-free and allocation-free,
		// and the rings are only merged when someone asks for a trace.
		Recorder:      obs.NewRecorder(workers+1, streamRecorderRing),
		Logger:        opt.Logger,
		StallWatchdog: opt.StallWatchdog,
	}
	if a := opt.Admission; a != nil {
		cfg.DeadlineUrgency = a.DeadlineUrgency
		cfg.StarveEpisodes = a.StarveEpisodes
	}
	var learned *qlearn.Learned
	switch opt.Policy {
	case PolicyLearned:
		qcfg := qlearn.DefaultConfig()
		qcfg.Seed = seed
		learned = qlearn.New(qcfg)
		cfg.Policy = learned
	case PolicyRandom:
		cfg.Policy = policy.NewRandom(seed)
	default:
		return nil, fmt.Errorf("roulette: policy %d cannot plan queries it has not seen; streams support PolicyLearned and PolicyRandom", opt.Policy)
	}
	if opt.CalibrateCostModel {
		e.calOnce.Do(func() {
			e.calibrated = exec.CalibrateModel(seed)
		})
		cfg.Model = e.calibrated
	}

	if opt.TraceEpisodes > 0 {
		cfg.Trace = metrics.NewRing(opt.TraceEpisodes)
	}

	b := query.NewStreamBatch(opt.MaxQueries)
	s := &Stream{
		e:       e,
		b:       b,
		opt:     opt,
		trace:   cfg.Trace,
		tickets: make(map[int]*Ticket),
		pending: make(map[int]QueryResult),
		runDone: make(chan struct{}),
	}
	s.model = cfg.Model
	if s.model == nil {
		s.model = cost.Default()
	}
	if a := opt.Admission; a != nil {
		s.adm = admission.NewController(admission.Config{
			MaxInFlightCost: a.MaxInFlightCost,
			DefaultRate:     a.DefaultRate,
			DefaultBurst:    a.DefaultBurst,
			Tenants:         a.Tenants,
			Hooks:           a.hooks,
		})
	}
	s.resCond = sync.NewCond(&s.mu)
	cfg.OnRetire = s.onRetire
	if opt.PolicyStore != nil && learned != nil {
		s.store, s.learned = opt.PolicyStore, learned
		// Snapshot-on-retirement: the GC finish pass invokes this at the
		// last moment the swept queries' learned state is still addressable
		// by live IDs. Runs under the session mutex, between episodes —
		// never on the zero-alloc episode step.
		cfg.PolicySweep = func(b *query.Batch, ctx *exec.Context, live bitset.Set) {
			exportPolicy(s.store, s.learned, b, ctx, live)
		}
	}
	sess, err := engine.NewSession(b, e.db, cfg)
	if err != nil {
		return nil, err
	}
	s.sess = sess
	go func() {
		res, err := sess.RunContext(ctx)

		// A cancelled or deadline-cut run exits with tickets unresolved;
		// resolve them as aborted partial results so no Wait blocks forever.
		cause := err
		if cause == nil && res != nil && res.Partial {
			cause = ctx.Err()
		}
		if cause == nil {
			cause = errors.New("roulette: stream terminated")
		}
		s.mu.Lock()
		orphans := s.tickets
		s.tickets = make(map[int]*Ticket)
		s.closed = true
		s.mu.Unlock()
		for _, t := range orphans {
			qr := QueryResult{Aborted: true, Err: cause}
			if src := sess.Context().Sources[t.qid]; src != nil {
				qr.Count = src.Count()
			}
			s.finish(t, qr)
		}

		s.mu.Lock()
		s.runErr = err
		s.done = true
		s.resCond.Broadcast()
		s.mu.Unlock()
		close(s.runDone)
	}()
	return s, nil
}

// Submit merges one query into the running stream and returns a Ticket
// for its result. The query starts executing immediately, reusing the
// STeM state built by earlier queries over the same relations; it
// rescans each of its relations once from the scan's current position.
//
// With admission control enabled (StreamOptions.Admission), Submit may
// instead fail fast with ErrOverloaded — the stream's in-flight cost budget
// or the tenant's rate limit is exhausted; back off for the OverloadError's
// RetryAfter hint — or with ErrDeadlineShed when the query's estimated cost
// already exceeds its deadline. Both checks run before the engine's worker
// pool is disturbed, so a saturated stream rejects cheaply.
func (s *Stream) Submit(q *Query) (*Ticket, error) {
	if q.err != nil {
		return nil, fmt.Errorf("roulette: query %q: %w", q.q.Tag, q.err)
	}
	if s.opt.DiscardRows && (q.q.Agg.Kind.NeedsColumn() || q.q.Agg.GroupByAlias != "") {
		return nil, fmt.Errorf("roulette: query %q: DiscardRows keeps only counts, but the query's aggregate needs result rows", q.q.Tag)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStreamClosed
	}
	s.mu.Unlock()

	tenant := ""
	var estCost float64
	if s.adm != nil {
		tenant = admission.TenantOf(q.q.Tag)
	}
	if s.adm != nil || q.deadline > 0 {
		estCost = s.estimateCost(&q.q)
	}
	var deadline time.Time
	if q.deadline > 0 {
		deadline = time.Now().Add(q.deadline)
		if est := time.Duration(estCost); est > q.deadline {
			// Hopeless: shed now instead of burning episodes on a query
			// that cannot finish in time.
			reg := metrics.Default()
			reg.DeadlineSheds.Add(1)
			reg.Tenant(tenant).Shed.Add(1)
			if s.adm != nil {
				s.adm.RecordShed(tenant)
			}
			s.recordSubmitEvent(obs.KShed, tenant)
			return nil, &ShedError{Tenant: tenant, AtSubmit: true, Deadline: deadline, Estimate: est}
		}
	}
	if s.adm != nil {
		if err := s.adm.Admit(tenant, estCost); err != nil {
			reg := metrics.Default()
			reg.SubmitOverloads.Add(1)
			reg.Tenant(tenant).Rejected.Add(1)
			s.recordSubmitEvent(obs.KReject, tenant)
			return nil, err
		}
		reg := metrics.Default()
		reg.SubmitAdmitted.Add(1)
		reg.Tenant(tenant).Admitted.Add(1)
	}

	if s.sess.FreeQuerySlots() == 0 {
		if s.adm != nil {
			s.adm.Release(tenant, estCost)
		}
		return nil, ErrStreamFull
	}

	meta := engine.SubmitMeta{
		Tenant:   tenant,
		Priority: q.priority,
		Deadline: deadline,
		Cost:     estCost,
	}
	if s.adm != nil {
		meta.Weight = s.adm.Weight(tenant)
	}
	cp := q.q // copy: the stream assigns its own query ID
	start := time.Now()
	qid, err := s.sess.SubmitLiveMeta(&cp, meta)
	if err != nil {
		if s.adm != nil {
			s.adm.Release(tenant, estCost)
		}
		return nil, err
	}
	if s.store != nil {
		// Warm start: if the store has a snapshot for the now-live template
		// set, fold it into the policy before the new query burns episodes
		// exploring. A miss changes nothing.
		s.sess.WithCompiled(func(b *query.Batch, ctx *exec.Context, admitted bitset.Set) {
			if n := importPolicy(s.store, s.learned, b, ctx, admitted); n > 0 {
				metrics.Default().WarmStartedQueries.Add(1)
			}
		})
	}
	t := &Ticket{
		s: s, qid: qid, tag: cp.Tag,
		tenant: tenant, admCost: estCost, admitted: s.adm != nil, start: start,
		done: make(chan struct{}),
	}
	s.mu.Lock()
	if qr, ok := s.pending[qid]; ok {
		// Retired before we could register (e.g. empty relations).
		delete(s.pending, qid)
		s.mu.Unlock()
		s.finish(t, qr)
		return t, nil
	}
	s.tickets[qid] = t
	s.mu.Unlock()
	return t, nil
}

// estimateCost estimates a query's execution nanoseconds from the cost
// model and relation cardinalities: one selection pass per relation plus a
// join pass per edge sized by its larger side. Deliberately crude — it only
// needs to be monotone in data size to make budget accounting and
// hopeless-deadline shedding meaningful.
func (s *Stream) estimateCost(q *query.Query) float64 {
	rows := make(map[string]float64, len(q.Rels))
	total := 0.0
	for _, r := range q.Rels {
		t := s.e.db.Table(r.Table)
		if t == nil {
			continue // surfaces as a compile error in SubmitLiveMeta
		}
		n := float64(t.NumRows())
		rows[r.Alias] = n
		total += s.model.Cost(cost.Selection, n, n)
	}
	for _, j := range q.Joins {
		n := rows[j.LeftAlias]
		if rn := rows[j.RightAlias]; rn > n {
			n = rn
		}
		total += s.model.Cost(cost.Join, n, n)
	}
	return total
}

// finish resolves a ticket exactly once: it releases the admission charge,
// records per-tenant SLO metrics, and publishes the result. Callers must
// own the ticket (have removed it from s.tickets, or never inserted it).
func (s *Stream) finish(t *Ticket, qr QueryResult) {
	qr.Tag = t.tag
	if t.admitted {
		s.adm.RetireDelayHook(t.tenant)
		s.adm.Release(t.tenant, t.admCost)
	}
	reg := metrics.Default()
	if qr.Err != nil && errors.Is(qr.Err, ErrDeadlineShed) {
		// Mid-flight sheds reach here via the engine's expiry watchdog;
		// the global DeadlineSheds counter was already bumped there.
		reg.Tenant(t.tenant).Shed.Add(1)
		if t.admitted {
			s.adm.RecordShed(t.tenant)
		}
	}
	if !t.start.IsZero() {
		reg.ObserveRetire(t.tenant, time.Since(t.start).Microseconds())
	}
	t.res = qr
	close(t.done)
	s.publish(qr)
}

// onRetire is the engine's retirement callback: it consumes the query's
// source into a QueryResult and resolves the ticket. It runs outside the
// session mutex but never concurrently with a batch mutation (the
// engine's quiesce gate waits for callbacks).
func (s *Stream) onRetire(qid int, st engine.QueryStatus) {
	src := s.sess.Context().Sources[qid]
	qr := QueryResult{Count: src.Count()}
	if st.Completed {
		hostRes, err := host.Consume(s.e.db, s.b, qid, src)
		if err != nil {
			qr.Aborted, qr.Err = true, err
		} else {
			for _, g := range hostRes.Groups {
				qr.Groups = append(qr.Groups, Group{Key: g.Key, Value: g.Value})
			}
			s.e.decodeGroups(s.b, qid, &qr)
		}
	} else {
		// Partial machinery: the count so far is a lower bound, not exact.
		qr.Aborted, qr.Err = true, st.Err
	}

	s.mu.Lock()
	t, ok := s.tickets[qid]
	if !ok {
		s.pending[qid] = qr
		s.mu.Unlock()
		return
	}
	delete(s.tickets, qid)
	s.mu.Unlock()
	s.finish(t, qr)
}

// publish enqueues a result for the Results channel (unbounded queue so
// engine callbacks never block on a slow consumer).
func (s *Stream) publish(qr QueryResult) {
	s.mu.Lock()
	s.resQ = append(s.resQ, qr)
	s.resCond.Broadcast()
	s.mu.Unlock()
}

// Results returns a channel delivering each query's result as it retires,
// in retirement order. The channel closes when the stream finishes. The
// feeding queue is unbounded, so a slow consumer delays nothing.
func (s *Stream) Results() <-chan QueryResult {
	s.resOnce.Do(func() {
		s.results = make(chan QueryResult)
		go func() {
			defer close(s.results)
			for {
				s.mu.Lock()
				for len(s.resQ) == 0 && !s.done {
					s.resCond.Wait()
				}
				if len(s.resQ) == 0 && s.done {
					s.mu.Unlock()
					return
				}
				qr := s.resQ[0]
				s.resQ = s.resQ[1:]
				s.mu.Unlock()
				s.results <- qr
			}
		}()
	})
	return s.results
}

// StemStats snapshots the per-relation STeM state of the running stream:
// resident entries and bytes (which shrink as retired queries are swept)
// and cumulative insert/probe traffic (late-submitted queries reusing a
// pre-built STeM show up as probes without matching inserts).
func (s *Stream) StemStats() []StreamStemStat {
	snap := s.sess.StemSnapshot()
	out := make([]StreamStemStat, len(snap))
	for i, st := range snap {
		out[i] = StreamStemStat{
			Table:    st.Table,
			Entries:  st.Entries,
			Inserts:  st.Inserts,
			Probes:   st.Probes,
			Matches:  st.Matches,
			EstBytes: st.EstBytes,
		}
	}
	return out
}

// StreamTenantStat is one tenant's admission counters at a point in time.
type StreamTenantStat struct {
	Tenant    string
	Admitted  int64 // submissions admitted
	Rejected  int64 // submissions rejected with ErrOverloaded
	Shed      int64 // queries shed with ErrDeadlineShed
	InFlight  int64 // admitted, not yet retired
	CostInUse float64
	Weight    float64
}

// AdmissionStats snapshots the stream's admission controller: the summed
// in-flight estimated cost, total admitted/rejected submissions, and the
// per-tenant breakdown. All zeroes (nil tenants) when admission control is
// disabled.
func (s *Stream) AdmissionStats() (inFlightCost float64, admitted, rejected int64, tenants []StreamTenantStat) {
	if s.adm == nil {
		return 0, 0, 0, nil
	}
	inUse, adm, rej, snap := s.adm.Snapshot()
	tenants = make([]StreamTenantStat, len(snap))
	for i, t := range snap {
		tenants[i] = StreamTenantStat{
			Tenant: t.Tenant, Admitted: t.Admitted, Rejected: t.Rejected,
			Shed: t.Shed, InFlight: t.InFlight, CostInUse: t.CostInUse,
			Weight: t.Weight,
		}
	}
	return inUse, adm, rej, tenants
}

// SnapshotPolicy exports the stream's current learned state about its
// live queries into the policy store immediately, returning the number
// of Q-states captured. Retirement sweeps and Close do this
// automatically; the explicit hook exists for operator tooling (e.g.
// saving a policy file mid-stream). Zero when the stream has no store,
// no learned policy, or no live queries.
func (s *Stream) SnapshotPolicy() int {
	if s.store == nil {
		return 0
	}
	n := 0
	s.sess.WithCompiled(func(b *query.Batch, ctx *exec.Context, admitted bitset.Set) {
		n = exportPolicy(s.store, s.learned, b, ctx, admitted)
	})
	return n
}

// PolicyStoreStats snapshots the attached store's counters (zero value
// when the stream has none).
func (s *Stream) PolicyStoreStats() PolicyStoreStats {
	if s.store == nil {
		return PolicyStoreStats{}
	}
	return s.store.Stats()
}

// Close stops accepting submissions, waits for every in-flight query to
// retire and for the garbage collector to drain, and shuts the worker
// pool down. With a PolicyStore attached, the store is persisted (a
// no-op for purely in-memory stores) after the final retirement sweeps
// have exported their snapshots. It returns the session's terminal
// error, if any. Close is idempotent.
func (s *Stream) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.resCond.Broadcast()
	}
	s.mu.Unlock()
	s.sess.CloseSubmit()
	<-s.runDone
	if s.store != nil {
		if err := s.store.Save(); err != nil && s.opt.Logger != nil {
			s.opt.Logger.Warn("policy store save failed", "err", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}
