package roulette

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/roulette-db/roulette/internal/faults"
	"github.com/roulette-db/roulette/internal/metrics"
)

// TestStreamSentinelRoundTrips pins the public error contract: every typed
// rejection matches its sentinel through errors.Is and unwraps to its
// concrete type through errors.As.
func TestStreamSentinelRoundTrips(t *testing.T) {
	e := streamFixture(t, 2000)
	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options:   Options{Seed: 11},
		Admission: &AdmissionOptions{MaxInFlightCost: 1}, // everything over budget
	})
	if err != nil {
		t.Fatal(err)
	}

	_, err = st.Submit(streamWorkload()[0])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("budget rejection = %v, want ErrOverloaded match", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("budget rejection not an *OverloadError: %#v", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if errors.Is(err, ErrDeadlineShed) || errors.Is(err, ErrStreamClosed) {
		t.Error("overload error matches unrelated sentinels")
	}

	_, err = st.Submit(streamWorkload()[0].WithDeadline(time.Nanosecond))
	if !errors.Is(err, ErrDeadlineShed) {
		t.Fatalf("hopeless-deadline submit = %v, want ErrDeadlineShed match", err)
	}
	var se *ShedError
	if !errors.As(err, &se) || !se.AtSubmit {
		t.Fatalf("want submit-time *ShedError, got %#v", err)
	}
	if se.Estimate <= 0 {
		t.Error("submit-time shed carries no cost estimate")
	}
	if errors.Is(err, ErrOverloaded) {
		t.Error("shed error matches ErrOverloaded")
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(streamWorkload()[0]); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("submit after close = %v, want ErrStreamClosed", err)
	}
}

// TestStreamAdmissionBudget exercises the in-flight cost budget end to end:
// a stream whose budget fits one query at a time must reject a concurrent
// second submission with ErrOverloaded, admit it again after the first
// retires, and drain its accounting to zero.
func TestStreamAdmissionBudget(t *testing.T) {
	e := streamFixture(t, 4000)
	q := streamWorkload()[0]
	probe, err := e.OpenStream(context.Background(), &StreamOptions{Options: Options{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	est := probe.estimateCost(&q.q)
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatalf("estimateCost = %v, want > 0", est)
	}

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options:   Options{Workers: 2, VectorSize: 256, Seed: 11},
		Admission: &AdmissionOptions{MaxInFlightCost: 1.5 * est},
	})
	if err != nil {
		t.Fatal(err)
	}
	tk1, err := st.Submit(streamWorkload()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(streamWorkload()[1]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second concurrent submit = %v, want ErrOverloaded", err)
	}
	if _, err := tk1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The first query retired and released its budget; the stream admits
	// again (the release happens before the ticket resolves, so no retry
	// loop is needed).
	tk2, err := st.Submit(streamWorkload()[1])
	if err != nil {
		t.Fatalf("submit after release: %v", err)
	}
	if _, err := tk2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	inUse, admitted, rejected, _ := st.AdmissionStats()
	if inUse != 0 {
		t.Errorf("in-flight cost after drain = %v, want 0", inUse)
	}
	if admitted != 2 || rejected != 1 {
		t.Errorf("admitted/rejected = %d/%d, want 2/1", admitted, rejected)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamTenantRateLimit gives one tenant a token bucket sized for a
// single query: its second submission is rate-rejected with a retry hint
// while an unlimited tenant keeps submitting freely.
func TestStreamTenantRateLimit(t *testing.T) {
	e := streamFixture(t, 2000)
	q := streamWorkload()[0]
	probe, err := e.OpenStream(context.Background(), &StreamOptions{Options: Options{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	est := probe.estimateCost(&q.q)
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Seed: 11},
		Admission: &AdmissionOptions{
			Tenants: map[string]TenantLimit{
				// Refill is slow enough that the second submission inside
				// this test cannot scrape together another est of tokens.
				"slow": {Rate: est / 100, Burst: 1.1 * est},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tenant string, i int) *Query {
		return streamWorkload()[0].WithTag(fmt.Sprintf("%s/q%d", tenant, i))
	}
	tk, err := st.Submit(mk("slow", 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Submit(mk("slow", 1))
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("second slow-tenant submit = %v, want rate rejection", err)
	}
	if oe.Tenant != "slow" || oe.RetryAfter <= 0 {
		t.Errorf("rejection = %+v, want tenant slow with positive retry hint", oe)
	}
	for i := 0; i < 4; i++ {
		fk, err := st.Submit(mk("free", i))
		if err != nil {
			t.Fatalf("unlimited tenant submit %d: %v", i, err)
		}
		if _, err := fk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// shedFixture builds two disjoint table groups so one tenant's work cannot
// ride along on another's shared scans: heavy(fk, v) ⋈ hdim(k), and a
// small standalone vict(v).
func shedFixture(t *testing.T, heavyRows int) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(19))
	const nd = 64
	fk := make([]int64, heavyRows)
	v := make([]int64, heavyRows)
	for i := range fk {
		fk[i] = int64(rng.Intn(nd))
		v[i] = int64(rng.Intn(1000))
	}
	dk := make([]int64, nd)
	for i := range dk {
		dk[i] = int64(i)
	}
	vv := make([]int64, 4096)
	for i := range vv {
		vv[i] = int64(rng.Intn(100))
	}
	e := NewEngine()
	e.MustCreateTable("heavy", ColSlice("fk", fk), ColSlice("v", v))
	e.MustCreateTable("hdim", ColSlice("k", dk))
	e.MustCreateTable("vict", ColSlice("vv", vv))
	return e
}

// TestStreamDeadlineShedMidFlight pins graceful degradation under priority
// pressure: a low-priority query whose deadline expires while high-priority
// work monopolizes the worker is shed mid-flight with ErrDeadlineShed and a
// partial result — it does not hang, and the high-priority queries finish
// unharmed.
func TestStreamDeadlineShedMidFlight(t *testing.T) {
	e := shedFixture(t, 400_000)
	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Workers: 1, VectorSize: 256, Seed: 11},
		Admission: &AdmissionOptions{
			// Keep the watchdog out of the way: this test wants the victim
			// to starve past its deadline, not get rescued.
			StarveEpisodes: 1 << 30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy := func(i int) *Query {
		return NewQuery(fmt.Sprintf("hog/q%d", i)).
			From("heavy").From("hdim").Join("heavy", "fk", "hdim", "k").
			WithPriority(1 << 17) // above the urgency boost: deadlines cannot preempt
	}
	var hogs []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := st.Submit(heavy(i))
		if err != nil {
			t.Fatal(err)
		}
		hogs = append(hogs, tk)
	}
	victim, err := st.Submit(NewQuery("meek/q0").From("vict").WithDeadline(2 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	qr, err := victim.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Aborted || !errors.Is(qr.Err, ErrDeadlineShed) {
		t.Fatalf("victim result = %+v, want mid-flight deadline shed", qr)
	}
	var se *ShedError
	if !errors.As(qr.Err, &se) || se.AtSubmit {
		t.Fatalf("victim error = %#v, want mid-flight *ShedError", qr.Err)
	}
	for _, tk := range hogs {
		hr, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if hr.Aborted {
			t.Errorf("high-priority query %s aborted: %v", hr.Tag, hr.Err)
		}
	}
	_, _, _, tenants := st.AdmissionStats()
	for _, ts := range tenants {
		if ts.Tenant == "meek" && ts.Shed != 1 {
			t.Errorf("meek tenant shed count = %d, want 1", ts.Shed)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamTenantFairnessNoStarvation saturates a stream with a heavy
// tenant class while a rate-limited light tenant submits alongside: every
// light-tenant query must still retire (weighted-fair scheduling plus the
// starvation watchdog forbid starvation), both tenants must report finite
// retire-latency percentiles, and the version watermark must stay intact.
func TestStreamTenantFairnessNoStarvation(t *testing.T) {
	e := streamFixture(t, 3000)
	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options:    Options{Workers: 2, VectorSize: 128, Seed: 11},
		MaxQueries: 8,
		Admission: &AdmissionOptions{
			Tenants: map[string]TenantLimit{
				"fgold":   {Weight: 8},
				"fbronze": {Weight: 1, Rate: 5e8, Burst: 1e9},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(q *Query) *Ticket {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			tk, err := st.Submit(q)
			if err == nil {
				return tk
			}
			var oe *OverloadError
			switch {
			case errors.Is(err, ErrStreamFull):
				time.Sleep(200 * time.Microsecond)
			case errors.As(err, &oe):
				time.Sleep(oe.RetryAfter)
			default:
				t.Fatalf("submit %s: %v", q.Tag(), err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("submit %s: starved out after 30s", q.Tag())
			}
		}
	}

	base := streamWorkload()
	var gold, bronze []*Ticket
	for r := 0; r < 3; r++ {
		for i := 0; i < 6; i++ {
			q := base[i%len(base)].WithTag(fmt.Sprintf("fgold/r%dq%d", r, i))
			gold = append(gold, submit(q))
		}
		for i := 0; i < 2; i++ {
			q := base[(i+6)%len(base)].WithTag(fmt.Sprintf("fbronze/r%dq%d", r, i))
			bronze = append(bronze, submit(q))
		}
	}
	waitAll := func(tks []*Ticket, class string) {
		t.Helper()
		for _, tk := range tks {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			qr, err := tk.Wait(ctx)
			cancel()
			if err != nil {
				t.Fatalf("%s query starved: %v", class, err)
			}
			if qr.Aborted {
				t.Fatalf("%s query %s aborted: %v", class, qr.Tag, qr.Err)
			}
		}
	}
	waitAll(bronze, "bronze")
	waitAll(gold, "gold")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snap := metrics.Default().Snapshot()
	seen := map[string]bool{}
	for _, ts := range snap.Tenants {
		if ts.Tenant != "fgold" && ts.Tenant != "fbronze" {
			continue
		}
		seen[ts.Tenant] = true
		if ts.Retired < 6 {
			t.Errorf("tenant %s retired %d queries, want >= 6", ts.Tenant, ts.Retired)
		}
		if ts.RetireP50Us <= 0 || ts.RetireP95Us <= 0 || ts.RetireP95Us < ts.RetireP50Us {
			t.Errorf("tenant %s latency percentiles p50=%d p95=%d not finite/ordered",
				ts.Tenant, ts.RetireP50Us, ts.RetireP95Us)
		}
	}
	if !seen["fgold"] || !seen["fbronze"] {
		t.Errorf("per-tenant SLO metrics missing a class: %v", seen)
	}
	if lag := snap.WatermarkLag; lag != 0 {
		t.Errorf("watermark lag = %d after drain, want 0", lag)
	}
}

// TestStreamAdmissionChaos hammers a budget-constrained stream from several
// goroutines under injected admission rejections, injected retirement
// delays, and random cancellations. Invariants (run with -race): every
// accepted submission resolves exactly one terminal ticket outcome, no
// admission charge leaks, and the injected faults actually fired.
func TestStreamAdmissionChaos(t *testing.T) {
	e := streamFixture(t, 2000)
	q := streamWorkload()[0]
	probe, err := e.OpenStream(context.Background(), &StreamOptions{Options: Options{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	est := probe.estimateCost(&q.q)
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	inj := faults.New(faults.Config{
		Seed:              42,
		SubmitRejectEvery: 3,
		RetireDelayEvery:  2,
		RetireDelay:       100 * time.Microsecond,
	})
	opt := &StreamOptions{
		Options:    Options{Workers: 3, VectorSize: 128, Seed: 11},
		MaxQueries: 16,
		Admission:  &AdmissionOptions{MaxInFlightCost: 3 * est},
	}
	opt.Admission.hooks = inj.AdmissionHooks()
	st, err := e.OpenStream(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 4, 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	var tickets []*Ticket
	var overloads int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				q := streamWorkload()[i%4].WithTag(fmt.Sprintf("c%d/q%d", g, i))
				var tk *Ticket
				deadline := time.Now().Add(30 * time.Second)
				for {
					var err error
					tk, err = st.Submit(q)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrStreamFull) {
						t.Errorf("goroutine %d submit: %v", g, err)
						return
					}
					if errors.Is(err, ErrOverloaded) {
						mu.Lock()
						overloads++
						mu.Unlock()
					}
					if time.Now().After(deadline) {
						t.Errorf("goroutine %d: submission starved", g)
						return
					}
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
				if rng.Intn(4) == 0 {
					tk.Cancel(nil)
				}
				mu.Lock()
				tickets = append(tickets, tk)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	// Every accepted submission must reach exactly one terminal outcome; a
	// double resolution would panic closing the ticket's done channel, a
	// leak would hang this loop (bounded by the context).
	for _, tk := range tickets {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		qr, err := tk.Wait(ctx)
		cancel()
		if err != nil {
			t.Fatalf("ticket leaked (no terminal outcome): %v", err)
		}
		if qr.Aborted && qr.Err == nil {
			t.Errorf("aborted ticket %s carries no cause", qr.Tag)
		}
	}
	inUse, admitted, _, _ := st.AdmissionStats()
	if inUse != 0 {
		t.Errorf("in-flight cost after all tickets resolved = %v, want 0 (charge leak)", inUse)
	}
	if admitted < int64(len(tickets)) {
		t.Errorf("admitted %d < %d resolved tickets", admitted, len(tickets))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if inj.SubmitRejects() == 0 {
		t.Error("no injected admission rejections fired")
	}
	if overloads == 0 {
		t.Error("no ErrOverloaded observed despite injected rejections")
	}
	if inj.RetireDelays() == 0 {
		t.Error("no injected retirement delays fired")
	}
}
