package roulette

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// streamFixture builds a three-table engine large enough that streams run
// for many episodes: fact(fk, gk, v) ⋈ dim(k, g) and fact ⋈ grp(gk2, h).
func streamFixture(t *testing.T, nf int) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const nd, ng = 40, 16
	fk := make([]int64, nf)
	gk := make([]int64, nf)
	v := make([]int64, nf)
	for i := range fk {
		fk[i] = int64(rng.Intn(nd))
		gk[i] = int64(rng.Intn(ng))
		v[i] = int64(rng.Intn(1000))
	}
	dk := make([]int64, nd)
	dg := make([]int64, nd)
	for i := range dk {
		dk[i] = int64(i)
		dg[i] = int64(i % 5)
	}
	gk2 := make([]int64, ng)
	gh := make([]int64, ng)
	for i := range gk2 {
		gk2[i] = int64(i)
		gh[i] = int64(i % 3)
	}
	e := NewEngine()
	e.MustCreateTable("fact", ColSlice("fk", fk), ColSlice("gk", gk), ColSlice("v", v))
	e.MustCreateTable("dim", ColSlice("k", dk), ColSlice("g", dg))
	e.MustCreateTable("grp", ColSlice("gk2", gk2), ColSlice("h", gh))
	return e
}

// streamWorkload is a mixed query set in the spirit of the paper's Fig. 12
// workload: shared join structure, varying selections.
func streamWorkload() []*Query {
	mk := func(tag string) *Query {
		return NewQuery(tag).From("fact").From("dim").Join("fact", "fk", "dim", "k")
	}
	return []*Query{
		mk("q0").CountStar(),
		mk("q1").Between("fact", "v", 0, 499),
		mk("q2").Between("fact", "v", 500, 999),
		mk("q3").Eq("dim", "g", 2),
		mk("q4").Lt("fact", "v", 250).CountStar(),
		NewQuery("q5").From("fact").From("grp").Join("fact", "gk", "grp", "gk2").Eq("grp", "h", 1),
		NewQuery("q6").From("fact").From("dim").From("grp").
			Join("fact", "fk", "dim", "k").Join("fact", "gk", "grp", "gk2").
			Ge("fact", "v", 100),
		mk("q7").Sum("fact", "v").GroupBy("dim", "g").OrderByKey(),
	}
}

func oracleCounts(t *testing.T, e *Engine, qs []*Query) map[string]QueryResult {
	t.Helper()
	res, err := e.ExecuteBatch(qs, &Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]QueryResult, len(res.Queries))
	for _, qr := range res.Queries {
		if qr.Aborted {
			t.Fatalf("oracle query %s aborted: %v", qr.Tag, qr.Err)
		}
		want[qr.Tag] = qr
	}
	return want
}

func checkAgainstOracle(t *testing.T, got QueryResult, want map[string]QueryResult) {
	t.Helper()
	w, ok := want[got.Tag]
	if !ok {
		t.Fatalf("unexpected result tag %q", got.Tag)
	}
	if got.Aborted {
		t.Fatalf("query %s aborted: %v", got.Tag, got.Err)
	}
	if got.Count != w.Count {
		t.Errorf("query %s: count = %d, want %d", got.Tag, got.Count, w.Count)
	}
	if len(got.Groups) != len(w.Groups) {
		t.Fatalf("query %s: %d groups, want %d", got.Tag, len(got.Groups), len(w.Groups))
	}
	for i := range got.Groups {
		if got.Groups[i] != w.Groups[i] {
			t.Errorf("query %s group %d: %+v, want %+v", got.Tag, i, got.Groups[i], w.Groups[i])
		}
	}
}

// TestStreamMatchesBatch is the tentpole equivalence check: submitting the
// workload one query at a time into a live stream produces results
// identical to one-shot ExecuteBatch.
func TestStreamMatchesBatch(t *testing.T) {
	e := streamFixture(t, 4000)
	want := oracleCounts(t, e, streamWorkload())

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Workers: 2, VectorSize: 256, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for _, q := range streamWorkload() {
		tk, err := st.Submit(q)
		if err != nil {
			t.Fatalf("submit %v: %v", q, err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		qr, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstOracle(t, qr, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamRandomizedArrival stresses the live-admission path: queries
// arrive in random order with random delays (so they land mid-scan of
// whatever is already running), across several reuse rounds so query IDs
// are recycled through GC. Results must always match the oracle. Run with
// -race to exercise the quiesce gate.
func TestStreamRandomizedArrival(t *testing.T) {
	e := streamFixture(t, 3000)
	want := oracleCounts(t, e, streamWorkload())
	rng := rand.New(rand.NewSource(5))

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options:    Options{Workers: 3, VectorSize: 128, Seed: 11},
		MaxQueries: 4, // force retirement + reclamation between arrivals
	})
	if err != nil {
		t.Fatal(err)
	}
	results := st.Results()
	done := make(chan struct{})
	var got []QueryResult
	go func() {
		defer close(done)
		for qr := range results {
			got = append(got, qr)
		}
	}()

	const rounds = 3
	for r := 0; r < rounds; r++ {
		qs := streamWorkload()
		rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
		for _, q := range qs {
			for {
				_, err := st.Submit(q)
				if errors.Is(err, ErrStreamFull) {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if err != nil {
					t.Fatalf("round %d submit: %v", r, err)
				}
				break
			}
			if rng.Intn(2) == 0 {
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	for _, qr := range got {
		checkAgainstOracle(t, qr, want)
	}
	if wantN := rounds * len(streamWorkload()); len(got) != wantN {
		t.Errorf("got %d results, want %d", len(got), wantN)
	}
}

// TestStreamStemGC checks the reclamation contract: while queries run the
// STeMs hold the ingested relations; after every query retires and the
// collector drains, at least 90% of the estimated STeM bytes are gone —
// and a query submitted after the collapse still computes exact results
// (no live query loses tuples to GC).
func TestStreamStemGC(t *testing.T) {
	e := streamFixture(t, 4000)
	want := oracleCounts(t, e, streamWorkload())

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Workers: 2, VectorSize: 256, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := func() int64 {
		var n int64
		for _, s := range st.StemStats() {
			n += s.EstBytes
		}
		return n
	}

	// Track the peak footprint by sampling synchronously between stream
	// operations: right after a Submit returns, that query is live and its
	// relations are (re)ingesting, so these samples see the working-set
	// high-water mark. (A free-running poller goroutine is not guaranteed
	// any CPU time on a single-core host and can miss the whole run.)
	var peak int64
	sample := func() {
		if n := total(); n > peak {
			peak = n
		}
	}

	var tickets []*Ticket
	for _, q := range streamWorkload() {
		tk, err := st.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
		sample()
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		sample()
	}
	if peak == 0 {
		t.Fatal("never observed a non-empty STeM")
	}

	// GC runs between episodes once the stream idles; poll for the collapse.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := total(); 10*n <= peak {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("STeM EstBytes did not drop >=90%%: peak %d, now %d", peak, total())
		}
		time.Sleep(time.Millisecond)
	}

	// The stream is still usable after full reclamation: a fresh query gets
	// exact results over recompacted, re-ingested STeMs.
	tk, err := st.Submit(streamWorkload()[6])
	if err != nil {
		t.Fatal(err)
	}
	qr, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, qr, want)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamLateProbeReuse submits a query, lets it finish, then submits a
// second query over the same relations: the second must observe probe
// traffic against the pre-built STeMs (shared state reuse, not a rebuild
// from scratch per query).
func TestStreamLateProbeReuse(t *testing.T) {
	e := streamFixture(t, 2000)
	st, err := e.OpenStream(context.Background(), &StreamOptions{
		// Probe/match counters fold from worker arenas only under CollectStats.
		Options: Options{Workers: 1, VectorSize: 256, Seed: 11, CollectStats: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	first, err := st.Submit(streamWorkload()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var probesBefore int64
	for _, s := range st.StemStats() {
		probesBefore += s.Probes
	}

	second, err := st.Submit(streamWorkload()[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := second.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var probesAfter, matches int64
	for _, s := range st.StemStats() {
		probesAfter += s.Probes
		matches += s.Matches
	}
	if probesAfter <= probesBefore {
		t.Errorf("late query produced no probe traffic: %d -> %d", probesBefore, probesAfter)
	}
	if matches == 0 {
		t.Error("late query probes found no matches on shared STeMs")
	}
}

// TestStreamTicketCancel cancels one query mid-flight: only that query
// aborts (with a partial, lower-bound count); the others complete exactly.
func TestStreamTicketCancel(t *testing.T) {
	e := streamFixture(t, 6000)
	want := oracleCounts(t, e, streamWorkload())

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Workers: 2, VectorSize: 64, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for _, q := range streamWorkload() {
		tk, err := st.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	victim := tickets[3]
	victim.Cancel(nil)
	for i, tk := range tickets {
		qr, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if tk == victim {
			if !qr.Aborted || !errors.Is(qr.Err, ErrQueryCancelled) {
				t.Errorf("victim not aborted: %+v", qr)
			}
			if w := want[qr.Tag]; qr.Count > w.Count {
				t.Errorf("victim count %d exceeds exact count %d", qr.Count, w.Count)
			}
			continue
		}
		_ = i
		checkAgainstOracle(t, qr, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamWaitContext ties a context to one ticket: when it expires,
// only that query is cancelled; the stream keeps serving the rest.
func TestStreamWaitContext(t *testing.T) {
	e := streamFixture(t, 6000)
	want := oracleCounts(t, e, streamWorkload())

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Workers: 1, VectorSize: 64, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for _, q := range streamWorkload() {
		tk, err := st.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the wait aborts its query immediately
	qr, werr := tickets[0].Wait(ctx)
	// The query may legitimately have retired before the cancelled Wait
	// observed it; only a cancellation outcome is checked for consistency.
	if werr != nil && !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled or nil", werr)
	}
	if qr.Aborted && !errors.Is(qr.Err, context.Canceled) {
		t.Errorf("cancelled ticket result = %+v", qr)
	}
	if werr != nil && !qr.Aborted {
		t.Errorf("Wait returned cancellation but result not aborted: %+v", qr)
	}
	for _, tk := range tickets[1:] {
		res, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstOracle(t, res, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSubmitErrors covers the submission-side error paths.
func TestStreamSubmitErrors(t *testing.T) {
	e := streamFixture(t, 500)
	if _, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Policy: PolicyGreedy},
	}); err == nil {
		t.Error("plan-replay policy accepted for a stream")
	}
	if _, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Admissions: []Admission{{AfterFraction: 0.5}}},
	}); err == nil {
		t.Error("batch admissions accepted for a stream")
	}

	st, err := e.OpenStream(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(NewQuery("bad").From("nope")); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := st.Submit(NewQuery("bad2").From("fact").Between("fact", "v", 9, 3)); err == nil {
		t.Error("builder error not surfaced")
	}
	ok, err := st.Submit(NewQuery("ok").From("fact").From("dim").Join("fact", "fk", "dim", "k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(NewQuery("late").From("fact")); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("submit after close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Error("Close not idempotent:", err)
	}
}
