package roulette

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/roulette-db/roulette/internal/value"
)

// typedFixture builds a two-table engine with string join keys and nullable
// columns:
//
//	fact(cat string?, v int64?, region string?)
//	dim(cat string, w int64)
//
// fact.cat and dim.cat share a dictionary via ShareDictionary, so the
// string join executes over directly comparable codes.
func typedFixture(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	e.MustCreateTable("fact",
		NullableStrCol("cat",
			[]string{"a", "b", "a", "c", "", "b", "d", "a"},
			[]bool{true, true, true, true, false, true, true, true}),
		NullableCol("v",
			[]int64{10, 0, 30, 40, 50, 60, 70, 0},
			[]bool{true, false, true, true, true, true, true, false}),
		NullableStrCol("region",
			[]string{"east", "west", "", "east", "west", "", "east", ""},
			[]bool{true, true, false, true, true, false, true, false}),
	)
	e.MustCreateTable("dim",
		StrCol("cat", "a", "b", "c", "e"),
		Col("w", 1, 2, 3, 4),
	)
	if err := e.ShareDictionary("fact.cat", "dim.cat"); err != nil {
		t.Fatal(err)
	}
	return e
}

// typedWorkload covers string equality, IN-lists, IS [NOT] NULL, same-column
// conjunctions, NULL join keys and string GROUP BY. Expected values are
// derived by hand from the fixture above.
func typedWorkload() []*Query {
	join := func(tag string) *Query {
		return NewQuery(tag).From("fact").From("dim").Join("fact", "cat", "dim", "cat")
	}
	return []*Query{
		// fact.cat matches: a→rows 0,2,7; b→1,5; c→3; NULL and "d" join nothing.
		join("join").CountStar(),                                       // 6
		join("eq").EqString("dim", "cat", "a"),                         // 3
		NewQuery("in").From("fact").InStrings("fact", "cat", "a", "d"), // rows 0,2,6,7 = 4
		NewQuery("vnull").From("fact").IsNull("fact", "v"),             // rows 1,7 = 2
		NewQuery("rnotnull").From("fact").IsNotNull("fact", "region"),  // rows 0,1,3,4,6 = 5
		// Conjunction of two string predicates on the same column.
		NewQuery("conj").From("fact").
			EqString("fact", "cat", "a").InStrings("fact", "cat", "a", "b"), // rows 0,2,7 = 3
		NewQuery("empty").From("fact").
			EqString("fact", "cat", "a").EqString("fact", "cat", "b"), // 0
		// SUM skips NULL v; groups keyed by shared-dictionary codes.
		join("sum").Sum("fact", "v").GroupBy("dim", "cat").OrderByKey(), // a:40 b:60 c:40
		// NULL region keys form one group, ordered before the labels.
		NewQuery("nullgroup").From("fact").CountStar().
			GroupBy("fact", "region").OrderByKey(), // NULL:3 east:3 west:2
	}
}

func TestTypedBatchMatchesHandOracle(t *testing.T) {
	e := typedFixture(t)
	res, err := e.ExecuteBatch(typedWorkload(), &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{
		"join": 6, "eq": 3, "in": 4, "vnull": 2, "rnotnull": 5,
		"conj": 3, "empty": 0, "sum": 6, "nullgroup": 8,
	}
	byTag := map[string]QueryResult{}
	for _, qr := range res.Queries {
		byTag[qr.Tag] = qr
		if qr.Count != counts[qr.Tag] {
			t.Errorf("query %s: count = %d, want %d", qr.Tag, qr.Count, counts[qr.Tag])
		}
	}
	wantSum := []Group{}
	for _, g := range []struct {
		label string
		v     int64
	}{{"a", 40}, {"b", 60}, {"c", 40}} {
		wantSum = append(wantSum, Group{Label: g.label, Value: g.v})
	}
	gotSum := byTag["sum"].Groups
	if len(gotSum) != len(wantSum) {
		t.Fatalf("sum groups = %+v", gotSum)
	}
	for i := range wantSum {
		if gotSum[i].Label != wantSum[i].Label || gotSum[i].Value != wantSum[i].Value {
			t.Errorf("sum group %d = %+v, want %+v", i, gotSum[i], wantSum[i])
		}
	}
	gotNG := byTag["nullgroup"].Groups
	if len(gotNG) != 3 {
		t.Fatalf("nullgroup groups = %+v", gotNG)
	}
	if gotNG[0].Key != NullValue || gotNG[0].Value != 3 {
		t.Errorf("NULL group first, got %+v", gotNG[0])
	}
	if gotNG[1].Label != "east" || gotNG[1].Value != 3 || gotNG[2].Label != "west" || gotNG[2].Value != 2 {
		t.Errorf("labelled groups = %+v", gotNG[1:])
	}
}

// TestTypedStreamMatchesBatch runs the same typed workload through a live
// stream and requires results identical to one-shot batch execution,
// including decoded labels.
func TestTypedStreamMatchesBatch(t *testing.T) {
	e := typedFixture(t)
	want := oracleCounts(t, e, typedWorkload())

	st, err := e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{VectorSize: 4, Seed: 11}, // several vectors even on 8 rows
	})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for _, q := range typedWorkload() {
		tk, err := st.Submit(q)
		if err != nil {
			t.Fatalf("submit %s: %v", q.Tag(), err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		qr, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstOracle(t, qr, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// typedRandFixture generates a randomized typed workload big enough to span
// many vectors, plus brute-force oracle predicates evaluated over the raw
// Go slices (independent of the engine's storage layer).
type typedRandFixture struct {
	e *Engine

	fcat  []string
	fnull []bool // fcat NULL mask
	fv    []int64
	vnull []bool // fv NULL mask
	dcat  []string
	dw    []int64
}

func newTypedRandFixture(t *testing.T, rng *rand.Rand, nf int) *typedRandFixture {
	t.Helper()
	cats := []string{
		"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
		"iota", "kappa", "lambda", "mu", "nu", "xi", "omicron", "pi",
	}
	f := &typedRandFixture{}
	for i := 0; i < nf; i++ {
		// Squaring skews the category draw toward low indexes.
		k := rng.Intn(len(cats))
		k = k * (rng.Intn(len(cats)) + 1) / len(cats)
		f.fcat = append(f.fcat, cats[k])
		f.fnull = append(f.fnull, rng.Intn(10) != 0) // ~10% NULL
		f.fv = append(f.fv, int64(rng.Intn(1000)))
		f.vnull = append(f.vnull, rng.Intn(8) != 0)
	}
	// dim covers only a prefix of the categories plus strings absent from
	// fact, so joins drop some categories and IN-lists can miss.
	for i := 0; i < 12; i++ {
		f.dcat = append(f.dcat, cats[i])
	}
	f.dcat = append(f.dcat, "rho", "sigma")
	for range f.dcat {
		f.dw = append(f.dw, int64(rng.Intn(100)))
	}

	f.e = NewEngine()
	f.e.MustCreateTable("fact",
		NullableStrCol("cat", f.fcat, f.fnull),
		NullableCol("v", f.fv, f.vnull),
	)
	f.e.MustCreateTable("dim", StrColSlice("cat", f.dcat), ColSlice("w", f.dw))
	if err := f.e.ShareDictionary("fact.cat", "dim.cat"); err != nil {
		t.Fatal(err)
	}
	return f
}

// oracle brute-forces a query given row predicates; join selects fact ⋈ dim
// on cat with NULL keys never matching.
func (f *typedRandFixture) oracle(join bool, fpred func(i int) bool, dpred func(j int) bool) int64 {
	var count int64
	for i := range f.fcat {
		if !fpred(i) {
			continue
		}
		if !join {
			count++
			continue
		}
		if !f.fnull[i] {
			continue // NULL join key
		}
		for j := range f.dcat {
			if f.dcat[j] == f.fcat[i] && dpred(j) {
				count++
			}
		}
	}
	return count
}

func TestTypedRandomizedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := newTypedRandFixture(t, rng, 3000)
	all := func(int) bool { return true }
	vOK := func(i int) bool { return f.vnull[i] }
	catOK := func(i int) bool { return f.fnull[i] }

	type tq struct {
		q    *Query
		want int64
	}
	join := func(tag string) *Query {
		return NewQuery(tag).From("fact").From("dim").Join("fact", "cat", "dim", "cat")
	}
	cases := []tq{
		{join("t0").CountStar(), f.oracle(true, all, all)},
		{join("t1").Between("dim", "w", 20, 70),
			f.oracle(true, all, func(j int) bool { return f.dw[j] >= 20 && f.dw[j] <= 70 })},
		{join("t2").EqString("fact", "cat", "gamma"),
			f.oracle(true, func(i int) bool { return catOK(i) && f.fcat[i] == "gamma" }, all)},
		{NewQuery("t3").From("fact").InStrings("fact", "cat", "alpha", "mu", "sigma"),
			f.oracle(false, func(i int) bool {
				return catOK(i) && (f.fcat[i] == "alpha" || f.fcat[i] == "mu" || f.fcat[i] == "sigma")
			}, nil)},
		{join("t4").IsNull("fact", "v"),
			f.oracle(true, func(i int) bool { return !f.vnull[i] }, all)},
		{NewQuery("t5").From("fact").IsNotNull("fact", "v").Between("fact", "v", 100, 600),
			f.oracle(false, func(i int) bool { return vOK(i) && f.fv[i] >= 100 && f.fv[i] <= 600 }, nil)},
		{NewQuery("t6").From("fact").IsNull("fact", "cat"),
			f.oracle(false, func(i int) bool { return !f.fnull[i] }, nil)},
		{join("t7").EqString("dim", "cat", "beta").Between("fact", "v", 0, 499),
			f.oracle(true,
				func(i int) bool { return vOK(i) && f.fv[i] < 500 },
				func(j int) bool { return f.dcat[j] == "beta" })},
	}

	var qs []*Query
	for _, c := range cases {
		qs = append(qs, c.q)
	}
	res, err := f.e.ExecuteBatch(qs, &Options{VectorSize: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cases {
		if got := res.Queries[i].Count; got != c.want {
			t.Errorf("query %s: count = %d, oracle = %d", res.Queries[i].Tag, got, c.want)
		}
	}

	// The same workload through a stream, two workers, must agree.
	st, err := f.e.OpenStream(context.Background(), &StreamOptions{
		Options: Options{Workers: 2, VectorSize: 128, Seed: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		tk, err := st.Submit(c.q)
		if err != nil {
			t.Fatalf("submit %s: %v", c.q.Tag(), err)
		}
		qr, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if qr.Count != c.want {
			t.Errorf("stream query %s: count = %d, oracle = %d", qr.Tag, qr.Count, c.want)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTypedErrors(t *testing.T) {
	e := NewEngine()
	e.MustCreateTable("s", StrCol("name", "x", "y"), Col("n", 1, 2))
	e.MustCreateTable("u", StrCol("name", "x", "z"))
	e.MustCreateTable("i", Col("k", 1, 2))

	cases := []struct {
		name string
		q    *Query
	}{
		{"range on string column", NewQuery("a").From("s").Between("s", "name", 0, 5)},
		{"strings on int column", NewQuery("b").From("s").EqString("s", "n", "x")},
		{"string join without shared dict", NewQuery("c").From("s").From("u").Join("s", "name", "u", "name")},
		{"string-int join", NewQuery("d").From("s").From("i").Join("s", "name", "i", "k")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := e.ExecuteBatch([]*Query{c.q}, nil)
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, value.ErrTypeMismatch) {
				t.Fatalf("error %q does not wrap value.ErrTypeMismatch", err)
			}
		})
	}

	// After unification the join is legal.
	if err := e.ShareDictionary("s.name", "u.name"); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteBatch([]*Query{
		NewQuery("ok").From("s").From("u").Join("s", "name", "u", "name"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries[0].Count != 1 { // only "x" appears in both
		t.Errorf("post-unification join count = %d, want 1", res.Queries[0].Count)
	}
}

func TestCreateTableTypedValidation(t *testing.T) {
	e := NewEngine()
	if err := e.CreateTable("bad1", Column{Name: "c", Data: []int64{1}, Strs: []string{"a"}}); err == nil {
		t.Error("both Data and Strs should be rejected")
	}
	if err := e.CreateTable("bad2", NullableCol("c", []int64{1, 2}, []bool{true})); err == nil {
		t.Error("short Valid mask should be rejected")
	}
	if err := e.CreateTable("bad3", NullableCol("c", []int64{NullValue}, []bool{true})); err == nil {
		t.Error("NullValue in valid cell of nullable column should be rejected")
	}
	// NullValue under a false validity bit is fine (it is the NULL encoding).
	if err := e.CreateTable("ok", NullableCol("c", []int64{NullValue}, []bool{false})); err != nil {
		t.Errorf("NULL row rejected: %v", err)
	}
}

func TestShareDictionaryTransitive(t *testing.T) {
	e := NewEngine()
	e.MustCreateTable("a", StrCol("s", "p", "q"))
	e.MustCreateTable("b", StrCol("s", "q", "r"))
	e.MustCreateTable("c", StrCol("s", "r", "p"))
	// Unify a+b first, then b+c: c must land in the same dictionary and all
	// previously-remapped columns stay consistent.
	if err := e.ShareDictionary("a.s", "b.s"); err != nil {
		t.Fatal(err)
	}
	if err := e.ShareDictionary("b.s", "c.s"); err != nil {
		t.Fatal(err)
	}
	qs := []*Query{
		NewQuery("ab").From("a").From("b").Join("a", "s", "b", "s"),
		NewQuery("ac").From("a").From("c").Join("a", "s", "c", "s"),
		NewQuery("bc").From("b").From("c").Join("b", "s", "c", "s"),
	}
	res, err := e.ExecuteBatch(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{1, 1, 1} { // exactly one shared string per pair
		if res.Queries[i].Count != want {
			t.Errorf("query %s: count = %d, want %d", res.Queries[i].Tag, res.Queries[i].Count, want)
		}
	}

	// ShareDictionary argument validation.
	for _, refs := range [][]string{
		{"a.s"},
		{"a.s", "nope.s"},
		{"a.s", "a.nope"},
		{"a.s", "bad"},
	} {
		if err := e.ShareDictionary(refs...); err == nil {
			t.Errorf("ShareDictionary(%v): no error", refs)
		}
	}
}
