package roulette

import (
	"github.com/roulette-db/roulette/internal/bitset"
	"github.com/roulette-db/roulette/internal/exec"
	"github.com/roulette-db/roulette/internal/policystore"
	"github.com/roulette-db/roulette/internal/qlearn"
	"github.com/roulette-db/roulette/internal/query"
)

// PolicyStore caches learned Q-table snapshots keyed by workload template
// signature, so recurring workloads warm-start from earlier runs instead
// of re-exploring from scratch. A store can back any number of batches
// and streams (it is safe for concurrent use), lives in memory by
// default, and optionally persists to a single file.
//
// Attach one via Options.PolicyStore. It only affects the learned policy
// (PolicyLearned); other policies ignore it. A cold lookup changes
// nothing — a run with an empty store behaves exactly like a run without
// one.
type PolicyStore = policystore.Cache

// PolicyStoreOptions configure NewPolicyStore.
type PolicyStoreOptions = policystore.Options

// PolicyStoreStats is a PolicyStore counter snapshot.
type PolicyStoreStats = policystore.Stats

// NewPolicyStore opens a policy store. With a Path set, an existing
// policy file is loaded (a missing file is a cold start; a corrupted one
// is reported and ignored, leaving a usable empty store).
func NewPolicyStore(opts PolicyStoreOptions) (*PolicyStore, error) {
	return policystore.Open(opts)
}

// importPolicy and exportPolicy bridge the engine-facing call sites in
// roulette.go and stream.go to the canonical-space remapping implemented
// in internal/policystore (see policystore.BuildSpace for the protocol).

func importPolicy(store *PolicyStore, pol *qlearn.Learned, b *query.Batch, ctx *exec.Context, live bitset.Set) int {
	return store.Import(pol, b, ctx, live)
}

func exportPolicy(store *PolicyStore, pol *qlearn.Learned, b *query.Batch, ctx *exec.Context, live bitset.Set) int {
	return store.Export(pol, b, ctx, live)
}
