package roulette

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

// warmBatch builds the recurring workload used across the warm-start
// tests: two joins sharing the fact scan, with per-run constants.
func warmBatch(lo int64) []*Query {
	return []*Query{
		NewQuery("a").From("fact").From("dim").Join("fact", "fk", "dim", "k").
			Between("fact", "v", lo, lo+40),
		NewQuery("b").From("fact").From("dim").Join("fact", "fk", "dim", "k").
			Eq("dim", "g", 1),
	}
}

// TestPolicyStoreColdRunMatchesBaseline is the oracle-equivalence gate:
// executing with an empty store attached must reproduce a store-less run
// bit for bit — same counts, same episode count, same per-episode
// convergence series — because a cold lookup must not perturb the
// policy's RNG stream or Q-table.
func TestPolicyStoreColdRunMatchesBaseline(t *testing.T) {
	run := func(store *PolicyStore) (*BatchResult, error) {
		e := fixture(t)
		return e.ExecuteBatch(warmBatch(10), &Options{
			Seed: 7, TrackConvergence: true, PolicyStore: store,
		})
	}
	base, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := NewPolicyStore(PolicyStoreOptions{})
	cold, err := run(store)
	if err != nil {
		t.Fatal(err)
	}
	if base.Queries[0].Count != cold.Queries[0].Count || base.Queries[1].Count != cold.Queries[1].Count {
		t.Fatalf("counts diverged: %v vs %v", base.Queries, cold.Queries)
	}
	if base.Episodes != cold.Episodes {
		t.Fatalf("episodes diverged: %d vs %d", base.Episodes, cold.Episodes)
	}
	if !reflect.DeepEqual(base.Convergence, cold.Convergence) {
		t.Fatal("convergence series diverged: cold store perturbed the run")
	}
	// The run itself must have populated the store for the next one.
	if st := store.Stats(); st.Stores == 0 || st.Misses == 0 || st.Hits != 0 || st.Entries == 0 {
		t.Fatalf("store stats after cold run = %+v", st)
	}
}

// TestPolicyStoreWarmStartBatch: a second run of the same workload shape
// — submitted in a different order, under different tags and constants —
// must hit the cache and produce correct results.
func TestPolicyStoreWarmStartBatch(t *testing.T) {
	e := fixture(t)
	store, _ := NewPolicyStore(PolicyStoreOptions{})
	if _, err := e.ExecuteBatch(warmBatch(10), &Options{Seed: 7, PolicyStore: store}); err != nil {
		t.Fatal(err)
	}

	// Same template set, permuted order, renamed tags, shifted constants.
	qs := warmBatch(30)
	qs[0], qs[1] = qs[1], qs[0]
	qs[0].q.Tag, qs[1].q.Tag = "x", "y"
	res, err := e.ExecuteBatch(qs, &Options{Seed: 99, PolicyStore: store})
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("warm run missed the cache: %+v", st)
	}

	// Correctness under a warm start: counts match a store-less run.
	base, err := fixture(t).ExecuteBatch(warmBatch(30), &Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries[0].Count != base.Queries[1].Count || res.Queries[1].Count != base.Queries[0].Count {
		t.Fatalf("warm counts %v vs baseline %v (order-swapped)", res.Queries, base.Queries)
	}
}

// TestPolicyStoreDistinguishesShapes: a different join shape must not hit
// the snapshot cached for another template set.
func TestPolicyStoreDistinguishesShapes(t *testing.T) {
	e := fixture(t)
	store, _ := NewPolicyStore(PolicyStoreOptions{})
	if _, err := e.ExecuteBatch(warmBatch(10), &Options{PolicyStore: store}); err != nil {
		t.Fatal(err)
	}
	other := []*Query{
		NewQuery("solo").From("fact").From("dim").Join("fact", "fk", "dim", "k").CountStar(),
	}
	if _, err := e.ExecuteBatch(other, &Options{PolicyStore: store}); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Hits != 0 || st.Entries < 2 {
		t.Fatalf("distinct shapes shared a snapshot: %+v", st)
	}
}

// TestPolicyStoreStream exercises the streaming path: retirement sweeps
// export snapshots, a later stream over the same store warm-starts, and
// Close persists to disk for a third, fresh store to reload.
func TestPolicyStoreStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.bin")
	e := fixture(t)
	store, err := NewPolicyStore(PolicyStoreOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	runStream := func(store *PolicyStore, lo int64) {
		t.Helper()
		st, err := e.OpenStream(context.Background(), &StreamOptions{
			Options: Options{Seed: 5, PolicyStore: store},
		})
		if err != nil {
			t.Fatal(err)
		}
		var tickets []*Ticket
		for _, q := range warmBatch(lo) {
			tk, err := st.Submit(q)
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		for _, tk := range tickets {
			if qr, err := tk.Wait(context.Background()); err != nil || qr.Aborted {
				t.Fatalf("stream query failed: %v %v", err, qr.Err)
			}
		}
		st.SnapshotPolicy()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	runStream(store, 10)
	if st := store.Stats(); st.Stores == 0 {
		t.Fatalf("first stream exported nothing: %+v", st)
	}
	runStream(store, 30)
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("second stream never warm-started: %+v", st)
	}

	// Close saved the store; a fresh one over the same path reloads it.
	re, err := NewPolicyStore(PolicyStoreOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() == 0 {
		t.Fatal("persisted policy file reloaded empty")
	}
	runStream(re, 50)
	if st := re.Stats(); st.Hits == 0 {
		t.Fatalf("reloaded store never warm-started: %+v", st)
	}
}
